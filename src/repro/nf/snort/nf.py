"""The Snort IDS network function.

The paper's integration adds 27 lines to Snort: cast the packet
inspection handlers as state functions and record a FORWARD header action
("since Snort does not modify packets").  This class is that integration:
:meth:`SnortIDS.inspect` — the per-flow inspection function — is exactly
what gets recorded in the Local MAT, with the flow key bound at record
time, so the fast path invokes the identical code the original path runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.actions import Forward
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.snort.engine import DetectionEngine, FlowMatcher, InspectionResult
from repro.nf.snort.rules import SnortRule, parse_rules
from repro.platform.costs import Operation


@dataclass(frozen=True)
class DetectionRecord:
    """One alert/log entry, comparable across baseline and SpeedyBox runs."""

    sid: int
    msg: str
    flow: FiveTuple
    action: str


class SnortIDS(NetworkFunction):
    """Mini-Snort wired into SpeedyBox."""

    def __init__(
        self,
        name: str = "snort",
        rules: Union[str, Sequence[SnortRule], None] = None,
    ):
        super().__init__(name)
        if rules is None:
            rules = []
        if isinstance(rules, str):
            rules = parse_rules(rules)
        self.engine = DetectionEngine(rules)
        self.flow_matchers: Dict[FiveTuple, FlowMatcher] = {}
        self.alerts: List[DetectionRecord] = []
        self.logs: List[DetectionRecord] = []
        self.passed_packets = 0
        self.inspected_packets = 0

    @classmethod
    def from_file(cls, path, name: str = "snort") -> "SnortIDS":
        """Load the rule set from a rule file on disk (var lines, comments
        and blank lines handled by :func:`parse_rules`)."""
        from pathlib import Path

        return cls(name, Path(path).read_text())

    @property
    def rules(self) -> List[SnortRule]:
        return self.engine.rules

    def _matcher_for(self, flow: FiveTuple) -> FlowMatcher:
        """Observation 1: assign the rule-matching function on flow setup."""
        matcher = self.flow_matchers.get(flow)
        if matcher is None:
            # Initial packet: header-match the full rule list once.
            self.charge(Operation.ACL_RULE_SCAN, len(self.engine.rules))
            self.charge(Operation.PATTERN_MATCH_SETUP)
            matcher = self.engine.assign_flow_matcher(flow)
            self.flow_matchers[flow] = matcher
        return matcher

    def inspect(self, packet: Packet, flow: FiveTuple) -> InspectionResult:
        """The recorded state function (READ payload): inspect one packet."""
        self.inspected_packets += 1
        matcher = self._matcher_for(flow)
        self.charge(Operation.EXACT_MATCH_LOOKUP)
        self.charge(Operation.PATTERN_MATCH_SETUP)
        self.charge(Operation.PAYLOAD_BYTE_SCAN, len(packet.payload))
        result = matcher.inspect(packet.payload)
        if result.passed:
            self.passed_packets += 1
        for rule in result.alerts:
            self.alerts.append(DetectionRecord(rule.sid, rule.msg, flow, "alert"))
        for rule in result.logs:
            self.logs.append(DetectionRecord(rule.sid, rule.msg, flow, "log"))
        return result

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        flow = packet.five_tuple()
        fid = api.nf_extract_fid(packet)

        # Snort never modifies packets: FORWARD is its header action.
        api.add_header_action(fid, Forward())
        api.add_state_function(
            fid,
            self.inspect,
            PayloadClass.READ,
            args=(flow,),
            name="inspect",
        )
        self.inspect(packet, flow)

    def handle_flow_close(self, packet: Packet) -> None:
        self.flow_matchers.pop(packet.five_tuple(), None)

    # -- migration hooks (repro.scale) ---------------------------------------

    def export_flow_state(self, flow: FiveTuple):
        matcher = self.flow_matchers.pop(flow, None)
        if matcher is None:
            return None
        # Only the flowbits are mutable per-flow state; the candidate set
        # is a pure function of the (identical) rule config, so the
        # target re-assigns its own matcher rather than adopting one
        # wired to our engine.
        return set(matcher.flowbits)

    def import_flow_state(self, flow: FiveTuple, state) -> None:
        matcher = self.engine.assign_flow_matcher(flow)
        matcher.flowbits = set(state)
        self.flow_matchers[flow] = matcher

    def state_snapshot(self, flow: FiveTuple):
        matcher = self.flow_matchers.get(flow)
        if matcher is None:
            return None
        return (
            tuple(rule.sid for rule in matcher.candidates),
            frozenset(matcher.flowbits),
        )

    def reset(self) -> None:
        super().reset()
        self.flow_matchers.clear()
        self.alerts.clear()
        self.logs.clear()
        self.passed_packets = 0
        self.inspected_packets = 0
