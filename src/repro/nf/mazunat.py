"""MazuNAT: source NAT in the style of Click's mazu-nat.click (§VI-C).

Translates the IP and port of flows leaving an internal subnet: the
source address is rewritten to the NAT's external IP and the source port
to a freshly allocated external port.  Return traffic addressed to an
allocated (external-IP, port) pair is rewritten back.  ICMP handling is
omitted, matching the paper ("we omit irrelevant functionalities such as
ICMP packet handling").

Per the paper's Observation 1, once a mapping is allocated for a flow the
same MODIFY applies to all its packets — MazuNAT records exactly that in
its Local MAT.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.actions import Modify
from repro.core.local_mat import InstrumentationAPI
from repro.net.addresses import ip_to_int
from repro.net.flow import FiveTuple
from repro.net.packet import Packet, PacketField
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


class NatPortExhausted(RuntimeError):
    """No free external ports remain."""


class MazuNAT(NetworkFunction):
    """Source NAT with sequential port allocation and a free list."""

    def __init__(
        self,
        name: str = "mazunat",
        external_ip: str = "203.0.113.1",
        internal_prefix: str = "10.0.0.0/8",
        port_range: Tuple[int, int] = (10000, 60000),
        port_pool=None,
    ):
        super().__init__(name)
        #: optional :class:`repro.ft.txstate.SharedPortPool` — when set,
        #: external ports come from cluster-shared transactional state
        #: instead of this instance's private allocator, so replicas of a
        #: NAT can never double-allocate a port and recovery replay
        #: re-acquires idempotently
        self.port_pool = port_pool
        self.external_ip = ip_to_int(external_ip)
        prefix, __, length = internal_prefix.partition("/")
        self._internal_base = ip_to_int(prefix)
        self._internal_len = int(length) if length else 32
        self.port_lo, self.port_hi = port_range
        if self.port_lo > self.port_hi:
            raise ValueError(f"invalid port range: {port_range!r}")
        self._next_port = self.port_lo
        self._free_ports: Set[int] = set()
        #: internal five-tuple -> (external ip, external port)
        self.mappings: Dict[FiveTuple, Tuple[int, int]] = {}
        #: (external ip, external port, proto) -> internal five-tuple
        self.reverse: Dict[Tuple[int, int, int], FiveTuple] = {}
        self.translations = 0

    # -- address-space helpers ----------------------------------------------

    def is_internal(self, address: int) -> bool:
        if self._internal_len == 0:
            return True
        mask = (0xFFFFFFFF << (32 - self._internal_len)) & 0xFFFFFFFF
        return (address & mask) == (self._internal_base & mask)

    def allocate_port(self) -> int:
        # Ports held by *imported* mappings were never handed out by this
        # allocator, so both sources must skip anything already in the
        # reverse table — without the guard a migrated-in flow's external
        # port could be double-allocated.
        in_use = {port for __, port, __ in self.reverse}
        while self._free_ports:
            port = self._free_ports.pop()
            if port not in in_use:
                return port
        while self._next_port <= self.port_hi:
            port = self._next_port
            self._next_port += 1
            if port not in in_use:
                return port
        raise NatPortExhausted(
            f"{self.name}: external port pool {self.port_lo}-{self.port_hi} exhausted"
        )

    def release_mapping(self, flow: FiveTuple) -> bool:
        mapping = self.mappings.pop(flow, None)
        if mapping is None:
            return False
        ext_ip, ext_port = mapping
        self.reverse.pop((ext_ip, ext_port, flow.protocol), None)
        if self.port_pool is not None:
            self.port_pool.release(flow)
        else:
            self._free_ports.add(ext_port)
        return True

    # -- packet processing ---------------------------------------------------

    def _outbound_action(self, flow: FiveTuple) -> Modify:
        mapping = self.mappings.get(flow)
        if mapping is None:
            self.charge(Operation.NAT_PORT_ALLOC)
            if self.port_pool is not None:
                # Idempotent per flow: a recovery replay of this packet
                # re-acquires the *same* port the pre-crash run got.
                port = self.port_pool.acquire(flow)
            else:
                port = self.allocate_port()
            mapping = (self.external_ip, port)
            self.mappings[flow] = mapping
            self.reverse[(mapping[0], mapping[1], flow.protocol)] = flow
        ext_ip, ext_port = mapping
        return Modify.set(src_ip=ext_ip, src_port=ext_port)

    def _inbound_action(self, flow: FiveTuple) -> Optional[Modify]:
        internal = self.reverse.get((flow.dst_ip, flow.dst_port, flow.protocol))
        if internal is None:
            return None
        return Modify.set(dst_ip=internal.src_ip, dst_port=internal.src_port)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        flow = packet.five_tuple()
        fid = api.nf_extract_fid(packet)

        self.charge(Operation.EXACT_MATCH_LOOKUP)
        if self.is_internal(flow.src_ip):
            action: Optional[Modify] = self._outbound_action(flow)
        else:
            action = self._inbound_action(flow)

        if action is None:
            # Unknown inbound traffic: a real MazuNAT drops it; we forward
            # to keep chains composable and record nothing but FORWARD.
            from repro.core.actions import Forward

            api.add_header_action(fid, Forward())
            return

        self.translations += 1
        self.charge(Operation.FIELD_WRITE, len(action.ops))
        self.charge(Operation.CHECKSUM_UPDATE)
        action.apply(packet)
        api.add_header_action(fid, action)

    def handle_flow_close(self, packet: Packet) -> None:
        flow = packet.five_tuple()
        if not self.release_mapping(flow):
            # Fast-path FIN packets already carry the rewritten header;
            # map back through the reverse table.
            internal = self.reverse.get((flow.src_ip, flow.src_port, flow.protocol))
            if internal is not None:
                self.release_mapping(internal)

    # -- migration hooks (repro.scale) ---------------------------------------

    def flow_through(self, flow: FiveTuple) -> FiveTuple:
        mapping = self.mappings.get(flow)
        if mapping is not None:
            ext_ip, ext_port = mapping
            return flow._replace(src_ip=ext_ip, src_port=ext_port)
        internal = self.reverse.get((flow.dst_ip, flow.dst_port, flow.protocol))
        if internal is not None:
            return flow._replace(dst_ip=internal.src_ip, dst_port=internal.src_port)
        return flow

    def _mapping_key(self, flow: FiveTuple) -> Optional[FiveTuple]:
        """The internal (outbound) tuple owning the flow's mapping, if any."""
        if flow in self.mappings:
            return flow
        return self.reverse.get((flow.dst_ip, flow.dst_port, flow.protocol))

    def export_flow_state(self, flow: FiveTuple):
        internal = self._mapping_key(flow)
        if internal is None:
            return None
        ext_ip, ext_port = self.mappings.pop(internal)
        self.reverse.pop((ext_ip, ext_port, internal.protocol), None)
        # The port does NOT return to the free list: the mapping still
        # owns it, just on another replica now.
        return (internal, ext_ip, ext_port)

    def import_flow_state(self, flow: FiveTuple, state) -> None:
        internal, ext_ip, ext_port = state
        self.mappings[internal] = (ext_ip, ext_port)
        self.reverse[(ext_ip, ext_port, internal.protocol)] = internal
        self._free_ports.discard(ext_port)

    def state_snapshot(self, flow: FiveTuple):
        internal = self._mapping_key(flow)
        if internal is None:
            return None
        return (internal, self.mappings[internal])

    def reset(self) -> None:
        super().reset()
        self.mappings.clear()
        self.reverse.clear()
        self._free_ports.clear()
        self._next_port = self.port_lo
        self.translations = 0
