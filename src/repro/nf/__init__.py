"""Network functions.

The five NFs the paper implements and evaluates (§VI-C, Table II) plus
the helpers its microbenchmarks use:

- :mod:`repro.nf.snort` — mini-Snort IDS: rule parsing, multi-pattern
  payload inspection, per-flow rule-function assignment.
- :mod:`repro.nf.maglev` — Google's Maglev load balancer (consistent
  hashing per §3.4 of the Maglev paper), with backend-failure events.
- :mod:`repro.nf.ipfilter` — Click IPFilter-style firewall (linear ACL).
- :mod:`repro.nf.monitor` — per-flow packet/byte counters.
- :mod:`repro.nf.mazunat` — MazuNAT-style address/port translator.
- :mod:`repro.nf.vpn` — AH encap/decap endpoints (ENCAP/DECAP actions).
- :mod:`repro.nf.dos` — the DoS-prevention NF of Fig. 3 (SYN-count events).
- :mod:`repro.nf.synthetic` — configurable NFs for the microbenchmarks.
"""

from repro.nf.base import NetworkFunction
from repro.nf.dos import DosPrevention
from repro.nf.gateway import VniMap, VxlanGateway, VxlanTerminator
from repro.nf.ipfilter import AclRule, IPFilter
from repro.nf.maglev import Backend, MaglevLoadBalancer, MaglevTable
from repro.nf.mazunat import MazuNAT
from repro.nf.monitor import Monitor
from repro.nf.policer import TokenBucketPolicer
from repro.nf.snort import SnortIDS, SnortRule, parse_rules
from repro.nf.synthetic import SyntheticNF
from repro.nf.vpn import VpnDecap, VpnEncap

__all__ = [
    "AclRule",
    "Backend",
    "DosPrevention",
    "IPFilter",
    "MaglevLoadBalancer",
    "MaglevTable",
    "MazuNAT",
    "Monitor",
    "NetworkFunction",
    "SnortIDS",
    "SnortRule",
    "SyntheticNF",
    "TokenBucketPolicer",
    "VniMap",
    "VpnDecap",
    "VpnEncap",
    "VxlanGateway",
    "VxlanTerminator",
    "parse_rules",
]
