"""Base class for network functions.

An NF implements :meth:`NetworkFunction.process`, which *both* performs
the NF's real behaviour on the packet and — when handed an instrumented
API — records that behaviour in the Local MAT.  The same code path runs in
baseline mode with a :class:`~repro.core.local_mat.NullInstrumentationAPI`
whose recording calls are no-ops, mirroring how the paper adds a handful
of API lines to existing NF code without changing its logic (§IV-B).

Cost accounting: NFs charge the primitive operations they perform to
``self.meter``; the platform points ``meter`` at a fresh
:class:`~repro.platform.costs.CycleMeter` per packet (or per stage) and
converts to cycles afterwards.  Functional-only callers leave the default
null meter in place.
"""

from __future__ import annotations

from typing import Optional

from repro.core.local_mat import InstrumentationAPI
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.platform.costs import CycleMeter, NULL_METER, Operation


class NetworkFunction:
    """Abstract NF: subclass and implement :meth:`process`."""

    #: Contract flag for the batch lane's bulk flow admission
    #: (``repro.core.batchlane``).  ``True`` declares that this NF's
    #: first-packet behaviour — the operations it charges and the actions
    #: it records — depends only on the packet's *shape* (headers present,
    #: payload bytes), never on flow identity or prior state, and that its
    #: only per-flow side effect on such packets is the aggregate counting
    #: :meth:`admit_flows` reproduces.  Stateful NFs (NAT port allocation,
    #: ACLs keyed on the five-tuple, connection trackers) must leave it
    #: ``False``; the lane then sets up every flow through the ordinary
    #: per-packet path.
    setup_flow_oblivious = False

    #: Per-packet state functions this NF contributes (None = varies).
    def __init__(self, name: str):
        self.name = name
        self.meter: CycleMeter = NULL_METER
        self.packets_processed = 0

    def charge(self, operation: Operation, times: float = 1.0) -> None:
        """Charge primitive work to the currently attached meter."""
        self.meter.charge(operation, times)

    def ingress(self, packet: Packet) -> None:
        """Common per-packet ingress work: every NF parses the packet.

        This repeated parse is exactly the R1 redundancy the paper calls
        out — each NF in the original chain pays it, while the SpeedyBox
        fast path parses once at the classifier.
        """
        self.packets_processed += 1
        self.charge(Operation.PARSE)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        """Process one packet; record behaviour through ``api``.

        Implementations must (1) behave identically whether ``api`` is
        recording or not, and (2) only *record* behaviour via ``api``,
        never change it.
        """
        raise NotImplementedError

    def handle_flow_close(self, packet: Packet) -> None:
        """Hook: called when the classifier sees the flow's FIN/RST."""
        return None

    def admit_flows(self, count: int) -> None:
        """Account ``count`` template-admitted first packets in one call.

        The batch lane's bulk admission installs flows from a captured
        template instead of running the chain per flow; this hook applies
        the aggregate side effects :meth:`process` would have had.  Only
        invoked on NFs whose ``setup_flow_oblivious`` is ``True``; the
        default covers the ingress packet counter.
        """
        self.packets_processed += count

    # -- migration hooks (repro.scale) ---------------------------------------
    #
    # NFs key per-flow state by the five-tuple they observe at their chain
    # position — i.e. after every upstream rewrite.  ``flow_through`` lets
    # the migrator walk a flow down the chain deriving each NF's observed
    # key without re-deriving header-action algebra; the export/import
    # pair moves the state itself; ``state_snapshot`` gives the
    # equivalence oracle a comparable read-only view.

    def flow_through(self, flow: FiveTuple) -> FiveTuple:
        """Read-only: the five-tuple as this NF's rewrites emit it.

        Must not allocate state — a plain lookup of existing mappings.
        Stateless/non-rewriting NFs pass the tuple through unchanged.
        """
        return flow

    def export_flow_state(self, flow: FiveTuple) -> Optional[object]:
        """Detach and return this NF's per-flow state for migration.

        ``flow`` is the five-tuple observed at this NF's position.  Both
        directions of a flow may be exported; an export that finds the
        state already detached returns ``None`` (as do stateless NFs).
        """
        return None

    def import_flow_state(self, flow: FiveTuple, state: object) -> None:
        """Adopt per-flow state exported by a same-type NF elsewhere."""
        return None

    def state_snapshot(self, flow: FiveTuple) -> Optional[object]:
        """A comparable, side-effect-free view of the flow's state."""
        return None

    def reset(self) -> None:
        """Clear all per-flow state (fresh run in benchmarks)."""
        self.packets_processed = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
