"""Base class for network functions.

An NF implements :meth:`NetworkFunction.process`, which *both* performs
the NF's real behaviour on the packet and — when handed an instrumented
API — records that behaviour in the Local MAT.  The same code path runs in
baseline mode with a :class:`~repro.core.local_mat.NullInstrumentationAPI`
whose recording calls are no-ops, mirroring how the paper adds a handful
of API lines to existing NF code without changing its logic (§IV-B).

Cost accounting: NFs charge the primitive operations they perform to
``self.meter``; the platform points ``meter`` at a fresh
:class:`~repro.platform.costs.CycleMeter` per packet (or per stage) and
converts to cycles afterwards.  Functional-only callers leave the default
null meter in place.
"""

from __future__ import annotations

from typing import Optional

from repro.core.local_mat import InstrumentationAPI
from repro.net.packet import Packet
from repro.platform.costs import CycleMeter, NULL_METER, Operation


class NetworkFunction:
    """Abstract NF: subclass and implement :meth:`process`."""

    #: Per-packet state functions this NF contributes (None = varies).
    def __init__(self, name: str):
        self.name = name
        self.meter: CycleMeter = NULL_METER
        self.packets_processed = 0

    def charge(self, operation: Operation, times: float = 1.0) -> None:
        """Charge primitive work to the currently attached meter."""
        self.meter.charge(operation, times)

    def ingress(self, packet: Packet) -> None:
        """Common per-packet ingress work: every NF parses the packet.

        This repeated parse is exactly the R1 redundancy the paper calls
        out — each NF in the original chain pays it, while the SpeedyBox
        fast path parses once at the classifier.
        """
        self.packets_processed += 1
        self.charge(Operation.PARSE)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        """Process one packet; record behaviour through ``api``.

        Implementations must (1) behave identically whether ``api`` is
        recording or not, and (2) only *record* behaviour via ``api``,
        never change it.
        """
        raise NotImplementedError

    def handle_flow_close(self, packet: Packet) -> None:
        """Hook: called when the classifier sees the flow's FIN/RST."""
        return None

    def reset(self) -> None:
        """Clear all per-flow state (fresh run in benchmarks)."""
        self.packets_processed = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
