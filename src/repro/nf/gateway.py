"""Tunnel gateways: VXLAN encapsulation by destination subnet.

Gateways (conferencing/media/voice, tunnel endpoints) are the largest NF
category in the enterprise survey the paper builds its abstraction on
(§IV-A): per-flow behaviour is a deterministic ENCAP (or DECAP) plus a
MODIFY for next-hop steering — ideal consolidation material.

:class:`VxlanGateway` maps destination prefixes to VXLAN network
identifiers (VNIs); flows to a mapped prefix are encapsulated with that
VNI and DSCP-marked for the underlay.  :class:`VxlanTerminator` strips
VXLAN headers at the far end.  A gateway+terminator pair in one chain
consolidates to a no-op, like the VPN pair.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.actions import Decap, Encap, Forward, Modify
from repro.core.local_mat import InstrumentationAPI
from repro.net.addresses import ip_to_int
from repro.net.headers import VxlanHeader
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


class VniMap:
    """Longest-prefix-match table: destination prefix -> VNI."""

    def __init__(self, entries: Sequence[Tuple[str, int]] = ()):
        self._entries: List[Tuple[int, int, int]] = []  # (base, len, vni)
        for prefix, vni in entries:
            self.add(prefix, vni)

    def add(self, prefix: str, vni: int) -> None:
        if not 0 <= vni <= 0xFFFFFF:
            raise ValueError(f"VNI out of 24-bit range: {vni!r}")
        address, __, length_text = prefix.partition("/")
        length = int(length_text) if length_text else 32
        if not 0 <= length <= 32:
            raise ValueError(f"bad prefix length in {prefix!r}")
        self._entries.append((ip_to_int(address), length, vni))
        # Keep longest prefixes first so the first hit is the best hit.
        self._entries.sort(key=lambda entry: -entry[1])

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, address: int) -> Optional[int]:
        for base, length, vni in self._entries:
            if length == 0:
                return vni
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            if (address & mask) == (base & mask):
                return vni
        return None


class VxlanGateway(NetworkFunction):
    """Tunnel ingress: encapsulate mapped traffic, mark the underlay."""

    def __init__(
        self,
        name: str = "vxlan-gw",
        vni_map: Optional[VniMap] = None,
        underlay_dscp: Optional[int] = 26,
    ):
        super().__init__(name)
        self.vni_map = vni_map or VniMap()
        self.underlay_dscp = underlay_dscp
        self.encapsulated = 0
        self.passed_through = 0

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)
        flow = packet.five_tuple()

        self.charge(Operation.ACL_RULE_SCAN, max(len(self.vni_map), 1))
        vni = self.vni_map.lookup(flow.dst_ip)
        if vni is None:
            self.passed_through += 1
            api.add_header_action(fid, Forward())
            return

        encap = Encap(VxlanHeader(vni=vni))
        self.charge(Operation.ENCAP_OP)
        encap.apply(packet)
        api.add_header_action(fid, encap)
        self.encapsulated += 1

        if self.underlay_dscp is not None:
            mark = Modify.set(dscp=self.underlay_dscp)
            self.charge(Operation.FIELD_WRITE)
            self.charge(Operation.CHECKSUM_UPDATE)
            mark.apply(packet)
            api.add_header_action(fid, mark)

    def reset(self) -> None:
        super().reset()
        self.encapsulated = 0
        self.passed_through = 0


class VxlanTerminator(NetworkFunction):
    """Tunnel egress: strip the VXLAN header if present."""

    def __init__(self, name: str = "vxlan-term"):
        super().__init__(name)
        self.decapsulated = 0
        self.passed_through = 0

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)

        if not isinstance(packet.peek_encap(), VxlanHeader):
            self.passed_through += 1
            api.add_header_action(fid, Forward())
            return

        decap = Decap(VxlanHeader)
        self.charge(Operation.DECAP_OP)
        decap.apply(packet)
        api.add_header_action(fid, decap)
        self.decapsulated += 1

    def reset(self) -> None:
        super().reset()
        self.decapsulated = 0
        self.passed_through = 0
