"""Maglev: Google's software load balancer (§VI-C).

Maglev is not open source; like the paper, we "implement our Maglev NF
logic by closely following the consistent hashing algorithm presented in
Section 3.4 of Maglev's paper": every backend gets a permutation of the
lookup-table slots derived from two hashes of its name (offset, skip),
and the table is populated by round-robin turns where each backend claims
the next unclaimed slot of its permutation.  The table size must be prime
so that every (offset, skip) pair generates a full permutation.

The NF keeps per-flow connection tracking (flows stick to their backend)
and registers a SpeedyBox event per flow: if the chosen backend becomes
unhealthy, the flow is rerouted to the backend the rebuilt table selects,
replacing the recorded ``modify(DIP, DPort)`` — the paper's canonical
Observation 2 example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.actions import Modify
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.addresses import ip_to_int, ip_to_str
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def _fnv1a(data: bytes, seed: int) -> int:
    value = (0xCBF29CE484222325 ^ seed) & 0xFFFFFFFFFFFFFFFF
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


@dataclass
class Backend:
    """One load-balanced server.

    ``weight`` skews the consistent-hashing slot share: a backend with
    weight 2 takes twice as many population turns as weight 1 (the
    weighting scheme sketched in Maglev §3.4).
    """

    name: str
    ip: int
    port: int
    healthy: bool = True
    weight: int = 1

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"backend weight must be positive, got {self.weight!r}")

    @classmethod
    def make(cls, name: str, ip: str, port: int, weight: int = 1) -> "Backend":
        return cls(name=name, ip=ip_to_int(ip), port=port, weight=weight)

    def __str__(self) -> str:
        state = "up" if self.healthy else "DOWN"
        return f"{self.name}@{ip_to_str(self.ip)}:{self.port} ({state})"


class MaglevTable:
    """The consistent-hashing lookup table of Maglev §3.4."""

    def __init__(self, backends: Sequence[Backend], table_size: int = 65537):
        if not _is_prime(table_size):
            raise ValueError(f"Maglev table size must be prime, got {table_size}")
        self.table_size = table_size
        self.backends: List[Backend] = list(backends)
        self._entries: List[Optional[Backend]] = [None] * table_size
        self.rebuild()

    def _permutation_params(self, backend: Backend) -> tuple:
        name_bytes = backend.name.encode()
        offset = _fnv1a(name_bytes, seed=0x01) % self.table_size
        skip = _fnv1a(name_bytes, seed=0x02) % (self.table_size - 1) + 1
        return offset, skip

    def rebuild(self) -> None:
        """Populate the table from the healthy backends (Maglev Fig. 5).

        Weighted backends take ``weight`` consecutive turns per round, so
        their slot share is proportional to weight.
        """
        healthy = [backend for backend in self.backends if backend.healthy]
        entries: List[Optional[Backend]] = [None] * self.table_size
        if not healthy:
            self._entries = entries
            return
        params = [self._permutation_params(backend) for backend in healthy]
        next_index = [0] * len(healthy)
        filled = 0
        while filled < self.table_size:
            for position, backend in enumerate(healthy):
                offset, skip = params[position]
                for __ in range(backend.weight):
                    # Walk this backend's permutation to its next free slot.
                    while True:
                        slot = (offset + next_index[position] * skip) % self.table_size
                        next_index[position] += 1
                        if entries[slot] is None:
                            entries[slot] = backend
                            filled += 1
                            break
                    if filled == self.table_size:
                        break
                if filled == self.table_size:
                    break
        self._entries = entries

    def lookup(self, flow: FiveTuple) -> Optional[Backend]:
        """Hash the five-tuple to a slot; return the owning backend."""
        if not any(backend.healthy for backend in self.backends):
            return None
        data = bytes(
            part
            for value, width in (
                (flow.src_ip, 4),
                (flow.dst_ip, 4),
                (flow.src_port, 2),
                (flow.dst_port, 2),
                (flow.protocol, 1),
            )
            for part in value.to_bytes(width, "big")
        )
        slot = _fnv1a(data, seed=0x10) % self.table_size
        return self._entries[slot]

    def slot_share(self) -> Dict[str, int]:
        """Slots owned per backend (balance analysis / tests)."""
        share: Dict[str, int] = {}
        for entry in self._entries:
            if entry is not None:
                share[entry.name] = share.get(entry.name, 0) + 1
        return share

    def entries_snapshot(self) -> List[Optional[str]]:
        return [entry.name if entry is not None else None for entry in self._entries]


class MaglevLoadBalancer(NetworkFunction):
    """The Maglev NF: VIP traffic is rewritten to a tracked backend."""

    def __init__(
        self,
        name: str = "maglev",
        backends: Sequence[Backend] = (),
        table_size: int = 65537,
    ):
        super().__init__(name)
        if not backends:
            backends = [
                Backend.make("backend-1", "192.168.1.1", 8080),
                Backend.make("backend-2", "192.168.1.2", 8080),
                Backend.make("backend-3", "192.168.1.3", 8080),
            ]
        self.table = MaglevTable(backends, table_size=table_size)
        #: connection tracking: flow -> backend (sticky routing)
        self.conntrack: Dict[FiveTuple, Backend] = {}
        self.reroutes = 0

    @property
    def backends(self) -> List[Backend]:
        return self.table.backends

    def backend_by_name(self, name: str) -> Backend:
        for backend in self.table.backends:
            if backend.name == name:
                return backend
        raise KeyError(f"no backend named {name!r}")

    def fail_backend(self, name: str) -> None:
        """Mark a backend unhealthy and rebuild the lookup table."""
        self.backend_by_name(name).healthy = False
        self.table.rebuild()

    def recover_backend(self, name: str) -> None:
        self.backend_by_name(name).healthy = True
        self.table.rebuild()

    # -- per-flow selection and the failure event -----------------------------

    def select_backend(self, flow: FiveTuple) -> Backend:
        backend = self.conntrack.get(flow)
        if backend is not None and backend.healthy:
            return backend
        selected = self.table.lookup(flow)
        if selected is None:
            raise RuntimeError(f"{self.name}: no healthy backends")
        if backend is not None and not backend.healthy:
            self.reroutes += 1
        self.conntrack[flow] = selected
        return selected

    def backend_failed(self, flow: FiveTuple) -> bool:
        """Event condition: the flow's tracked backend went unhealthy."""
        backend = self.conntrack.get(flow)
        return backend is not None and not backend.healthy

    def reroute_flow(self, flow: FiveTuple) -> Modify:
        """Event update function: re-select and return the new MODIFY."""
        self.charge(Operation.HASH_COMPUTE)
        backend = self.select_backend(flow)
        return Modify.set(dst_ip=backend.ip, dst_port=backend.port)

    def track(self, packet: Packet, flow: FiveTuple) -> None:
        """State function (IGNORE payload): per-packet conntrack touch."""
        self.charge(Operation.CONNECTION_TRACK)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        flow = packet.five_tuple()
        fid = api.nf_extract_fid(packet)

        self.charge(Operation.EXACT_MATCH_LOOKUP)
        if flow not in self.conntrack or not self.conntrack[flow].healthy:
            self.charge(Operation.HASH_COMPUTE)
        backend = self.select_backend(flow)

        action = Modify.set(dst_ip=backend.ip, dst_port=backend.port)
        self.charge(Operation.FIELD_WRITE, len(action.ops))
        self.charge(Operation.CHECKSUM_UPDATE)
        action.apply(packet)

        api.add_header_action(fid, action)
        api.add_state_function(
            fid,
            self.track,
            PayloadClass.IGNORE,
            args=(flow,),
            name="track",
        )
        # one_shot=False: after a reroute the condition goes false (the
        # flow now tracks a healthy backend), so the event re-arms itself
        # and later failures of the *new* backend trigger again.
        api.register_event(
            fid,
            self.backend_failed,
            args=(flow,),
            update_function_handler=self.reroute_flow,
            one_shot=False,
        )
        self.track(packet, flow)

    def handle_flow_close(self, packet: Packet) -> None:
        self.conntrack.pop(packet.five_tuple(), None)

    # -- migration hooks (repro.scale) ---------------------------------------

    def flow_through(self, flow: FiveTuple) -> FiveTuple:
        backend = self.conntrack.get(flow)
        if backend is not None:
            return flow._replace(dst_ip=backend.ip, dst_port=backend.port)
        return flow

    def export_flow_state(self, flow: FiveTuple):
        backend = self.conntrack.pop(flow, None)
        if backend is None:
            return None
        # Transfer by *name*: the target replica tracks its own Backend
        # objects (with their own health state), never ours.
        return backend.name

    def import_flow_state(self, flow: FiveTuple, state) -> None:
        self.conntrack[flow] = self.backend_by_name(state)

    def state_snapshot(self, flow: FiveTuple):
        backend = self.conntrack.get(flow)
        return None if backend is None else (backend.name, backend.healthy)

    def reset(self) -> None:
        super().reset()
        self.conntrack.clear()
        self.reroutes = 0
        for backend in self.table.backends:
            backend.healthy = True
        self.table.rebuild()
