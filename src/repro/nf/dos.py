"""DoS Prevention: the Event Table walkthrough NF (Fig. 3).

Monitors per-flow counters (TCP SYNs seen, or total packets in
rate-limiter mode) and registers an event per flow: when the counter
exceeds the threshold, the flow's header action flips from FORWARD to
DROP — the exact Fig. 3 transition where ``flow1_cnt > 100`` replaces a
modify with a drop and the Global MAT re-consolidates.

The NF's own slow-path logic applies the same threshold, so baseline and
SpeedyBox behaviour stay equivalent packet-for-packet.
"""

from __future__ import annotations

from typing import Dict

from repro.core.actions import Drop, Forward
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass, StateFunction
from repro.net.flow import FiveTuple, PROTO_TCP
from repro.net.headers import TCP_SYN, TCPHeader
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


class DosPrevention(NetworkFunction):
    """Per-flow counter with a drop-above-threshold event.

    ``mode='syn'`` counts TCP SYN flags (the Fig. 3 SYN-flood detector);
    ``mode='packets'`` counts every packet (a rate limiter), which also
    exercises the event machinery on the fast path where SYNs never go.
    """

    def __init__(self, name: str = "dos-prevention", threshold: int = 100, mode: str = "syn"):
        super().__init__(name)
        if mode not in ("syn", "packets"):
            raise ValueError(f"mode must be 'syn' or 'packets', got {mode!r}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        self.threshold = threshold
        self.mode = mode
        self.counters: Dict[FiveTuple, int] = {}
        self.blocked_flows: Dict[FiveTuple, int] = {}

    def _counts(self, packet: Packet) -> bool:
        if self.mode == "packets":
            return True
        return (
            packet.ip.protocol == PROTO_TCP
            and isinstance(packet.l4, TCPHeader)
            and packet.l4.has_flag(TCP_SYN)
        )

    def track(self, packet: Packet, key: FiveTuple) -> None:
        """State function (IGNORE payload): bump the flow counter."""
        self.charge(Operation.COUNTER_UPDATE)
        if self._counts(packet):
            self.counters[key] = self.counters.get(key, 0) + 1

    def count_blocked(self, packet: Packet, key: FiveTuple) -> None:
        """State function installed after the drop event fires.

        Mirrors the slow-path drop branch exactly, so NF internal state
        stays identical between the original chain and the fast path.
        """
        self.charge(Operation.COUNTER_UPDATE)
        self.blocked_flows[key] = self.blocked_flows.get(key, 0) + 1

    def exceeded(self, key: FiveTuple) -> bool:
        """The event condition handler for ``key``."""
        return self.counters.get(key, 0) > self.threshold

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        key = packet.five_tuple()
        fid = api.nf_extract_fid(packet)

        self.charge(Operation.EXACT_MATCH_LOOKUP)
        # Check-then-count: a flow already over threshold is dropped on
        # arrival; otherwise the packet is counted and forwarded.  This
        # ordering makes the NF's inline behaviour packet-exact with the
        # fast path, where the Event Table's pre-check sees the counter
        # as of the *previous* packet (Fig. 3 semantics).
        if self.exceeded(key):
            self.blocked_flows[key] = self.blocked_flows.get(key, 0) + 1
            self.charge(Operation.DROP_FREE)
            packet.drop()
            api.add_header_action(fid, Drop())
            return

        self.track(packet, key)
        api.add_header_action(fid, Forward())
        api.add_state_function(
            fid,
            self.track,
            PayloadClass.IGNORE,
            args=(key,),
            name="track",
        )
        blocked_sf = StateFunction(
            self.count_blocked,
            PayloadClass.IGNORE,
            args=(key,),
            name="count_blocked",
            nf_name=self.name,
        )
        api.register_event(
            fid,
            self.exceeded,
            args=(key,),
            update_action=Drop(),
            update_state_functions=[blocked_sf],
        )

    def reset(self) -> None:
        super().reset()
        self.counters.clear()
        self.blocked_flows.clear()
