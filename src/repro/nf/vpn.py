"""VPN endpoints: the paper's ENCAP/DECAP example (§IV-A1).

"VPNs add an Authentication Header (AH) for each packet before
forwarding (encap), and remove the AH when the other end receives the
packet (decap)."

:class:`VpnEncap` pushes an AH whose integrity value is computed from the
flow's first payload (a keyed FNV hash standing in for HMAC — the paper's
evaluation never exercises cryptographic strength, only the encap/decap
header actions and the payload-reading state function).  :class:`VpnDecap`
pops and verifies the AH.  An adjacent encap+decap pair in one chain
consolidates away entirely (§V-B's stack elimination).
"""

from __future__ import annotations

from typing import Dict

from repro.core.actions import Decap, Encap
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.flow import FiveTuple
from repro.net.headers import AuthenticationHeader
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


def keyed_digest(key: int, payload: bytes) -> int:
    """A keyed 64-bit FNV digest (stands in for the AH ICV computation)."""
    value = (0xCBF29CE484222325 ^ key) & 0xFFFFFFFFFFFFFFFF
    for byte in payload:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class VpnEncap(NetworkFunction):
    """Tunnel ingress: authenticate the payload and push an AH."""

    def __init__(self, name: str = "vpn-encap", spi: int = 0x1001, key: int = 0x5EED):
        super().__init__(name)
        self.spi = spi
        self.key = key
        self.encapsulated = 0

    def authenticate(self, packet: Packet, spi: int) -> None:
        """State function (READ payload): compute and check the digest."""
        self.charge(Operation.PAYLOAD_BYTE_SCAN, len(packet.payload))
        self.charge(Operation.HASH_COMPUTE)
        digest = keyed_digest(self.key, packet.payload)
        if packet.encaps and isinstance(packet.peek_encap(), AuthenticationHeader):
            packet.peek_encap().icv = digest

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)
        flow = packet.five_tuple()

        header = AuthenticationHeader(
            next_header=flow.protocol,
            spi=self.spi,
            sequence=0,
            icv=0,
        )
        action = Encap(header)
        self.charge(Operation.ENCAP_OP)
        action.apply(packet)
        self.encapsulated += 1

        api.add_header_action(fid, action)
        api.add_state_function(
            fid,
            self.authenticate,
            PayloadClass.READ,
            args=(self.spi,),
            name="authenticate",
        )
        self.authenticate(packet, self.spi)

    def reset(self) -> None:
        super().reset()
        self.encapsulated = 0


class VpnDecap(NetworkFunction):
    """Tunnel egress: verify and strip the AH."""

    def __init__(self, name: str = "vpn-decap", key: int = 0x5EED):
        super().__init__(name)
        self.key = key
        self.decapsulated = 0
        self.verification_failures = 0
        #: flows whose digests failed verification
        self.bad_flows: Dict[FiveTuple, int] = {}

    def verify(self, packet: Packet, key: int) -> bool:
        """State function (READ payload): recompute and compare the digest."""
        self.charge(Operation.PAYLOAD_BYTE_SCAN, len(packet.payload))
        self.charge(Operation.HASH_COMPUTE)
        return True

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)

        if not packet.encaps or not isinstance(packet.peek_encap(), AuthenticationHeader):
            from repro.core.actions import Forward

            api.add_header_action(fid, Forward())
            return

        header = packet.peek_encap()
        expected = keyed_digest(self.key, packet.payload)
        if header.icv != expected:
            self.verification_failures += 1
            self.bad_flows[packet.five_tuple()] = self.bad_flows.get(packet.five_tuple(), 0) + 1

        action = Decap(AuthenticationHeader)
        self.charge(Operation.DECAP_OP)
        action.apply(packet)
        self.decapsulated += 1

        api.add_header_action(fid, action)
        api.add_state_function(
            fid,
            self.verify,
            PayloadClass.READ,
            args=(self.key,),
            name="verify",
        )

    def reset(self) -> None:
        super().reset()
        self.decapsulated = 0
        self.verification_failures = 0
        self.bad_flows.clear()
