"""The BESS platform model (§VI-A).

"BESS typically implements an entire service chain as a single process on
a dedicated core."  Consequences modelled here:

- NFs hand packets to each other with a cheap in-process module dispatch
  (``nf_dispatch``), not shared-memory rings;
- the whole chain is run-to-completion: one core serves a packet start to
  finish, so throughput is the inverse of per-packet occupancy and falls
  as chains grow (Fig. 5a, Fig. 8);
- SpeedyBox's parallel state-function waves fork onto worker cores; the
  main core blocks at the join, so the *latency* saving (max instead of
  sum per wave) is also an *occupancy* saving — which is exactly why
  SpeedyBox improves BESS's processing rate (Fig. 5a, 2.1x at three
  state functions) but not OpenNetVM's.

The paper's SpeedyBox-on-BESS prototype implements the Global MAT as a
global array in the single process; the fast path here likewise runs
entirely on the main core.
"""

from __future__ import annotations

from repro.core.framework import ProcessReport
from repro.platform.base import Platform, StagePlan


class BessPlatform(Platform):
    """Single-core, run-to-completion chain execution."""

    name = "bess"

    def _transport_cycles_per_hop(self) -> float:
        return self.costs.nf_dispatch

    def _parallel_sync_cycles(self) -> float:
        # Workers share the process address space: fork/join only.
        return 0.0

    # -- loaded mode: one stage, occupancy == wall latency ------------------

    def _stage_count(self) -> int:
        return 1

    def _stage_label(self, stage_index: int) -> str:
        # The whole chain runs to completion on one dedicated core.
        return "chain-core"

    def _stage_plan(self, report: ProcessReport) -> StagePlan:
        # Run-to-completion: the core blocks until the packet finishes
        # (including the join of any parallel SF waves), so occupancy is
        # the full wall-clock latency.
        __, latency_cycles, __ = self._time_report(report)
        return [(0, self.costs.cycles_to_ns(latency_cycles))]
