"""The CPU cycle-cost model.

The paper's evaluation reports CPU cycles per packet, Mpps and µs latency
measured on a 2.00 GHz Xeon E5-2660 v4.  This module is the substitution
for that testbed: every primitive operation a platform, NF or SpeedyBox
component performs is charged to a :class:`CycleMeter` under an
:class:`Operation` tag, and a :class:`CostModel` maps tags to cycle
counts.

Calibration
-----------

Default constants are calibrated against the paper's anchor numbers
(DESIGN.md "Cost-model calibration"):

- one IPFilter hop on the original BESS chain ≈ 530 cycles (Table III);
- the SpeedyBox fast path for one consolidated header action ≈ 540–600
  cycles — slightly *more* than a single NF hop, so SpeedyBox loses at
  chain length 1 and wins ≈ (N−1)/N beyond (Fig. 4);
- per-hop ring transfer on OpenNetVM adds enqueue+dequeue+cache-miss
  cycles, which is why ONVM per-NF costs exceed BESS's and why header
  consolidation contributes relatively less there (Fig. 7).

Absolute Mpps values are model outputs and differ from the testbed's;
EXPERIMENTS.md compares shapes, ratios and crossovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from typing import Dict, Optional


class Operation(enum.Enum):
    """Every primitive operation the simulation charges cycles for."""

    # NIC / platform transport
    NIC_RX = "nic_rx"
    NIC_TX = "nic_tx"
    NF_DISPATCH = "nf_dispatch"              # BESS module hop inside one process
    RING_ENQUEUE = "ring_enqueue"            # ONVM shared-memory ring ops
    RING_DEQUEUE = "ring_dequeue"
    CROSS_CORE_SYNC = "cross_core_sync"      # cache-line transfer between cores

    # Packet handling common to all NFs
    PARSE = "parse"                          # L2-L4 header parse
    EXACT_MATCH_LOOKUP = "exact_match_lookup"  # hash-table flow lookup
    ACL_RULE_SCAN = "acl_rule_scan"          # per ACL rule, linear scan
    FIELD_WRITE = "field_write"              # rewrite one header field
    MERGED_FIELD_WRITE = "merged_field_write"  # extra field in a consolidated modify
    CHECKSUM_UPDATE = "checksum_update"      # incremental checksum fixup
    ENCAP_OP = "encap_op"
    DECAP_OP = "decap_op"
    DROP_FREE = "drop_free"                  # descriptor release on drop

    # NF-internal work
    PAYLOAD_BYTE_SCAN = "payload_byte_scan"  # DPI, per byte
    PAYLOAD_BYTE_WRITE = "payload_byte_write"
    PATTERN_MATCH_SETUP = "pattern_match_setup"  # per-packet matcher init
    COUNTER_UPDATE = "counter_update"        # monitor per-flow counter
    HASH_COMPUTE = "hash_compute"            # consistent hashing etc.
    NAT_PORT_ALLOC = "nat_port_alloc"        # initial packets only
    CONNECTION_TRACK = "connection_track"    # per-packet conntrack touch

    # SpeedyBox machinery
    FID_HASH = "fid_hash"
    METADATA_ATTACH = "metadata_attach"
    METADATA_DETACH = "metadata_detach"
    MAT_BEGIN_RECORD = "mat_begin_record"
    MAT_RECORD_HA = "mat_record_ha"
    MAT_RECORD_SF = "mat_record_sf"
    EVENT_REGISTER = "event_register"
    EVENT_CHECK = "event_check"              # per active event per packet
    GLOBAL_MAT_LOOKUP = "global_mat_lookup"
    FAST_PATH_DISPATCH = "fast_path_dispatch"  # fixed fast-path executor cost
    CONSOLIDATE_ACTION = "consolidate_action"  # per source action, once per flow
    GLOBAL_RULE_INSTALL = "global_rule_install"
    SF_INVOKE = "sf_invoke"                  # per state-function call overhead
    WORKER_FORK = "worker_fork"              # per parallel wave (width > 1)
    WORKER_JOIN = "worker_join"
    FLOW_DELETE = "flow_delete"              # FIN/RST cleanup


# Enum's default __hash__ is a Python-level method call; meters hash an
# Operation on every charge, millions of times per run.  Members are
# singletons compared by identity, so the C-level id hash is equivalent
# (dicts keyed by Operation keep insertion order either way).
Operation.__hash__ = object.__hash__  # type: ignore[method-assign]


@dataclass(frozen=True)
class CostModel:
    """Cycles per operation, plus the clock that converts cycles to time."""

    clock_ghz: float = 2.0

    nic_rx: float = 130.0
    nic_tx: float = 130.0
    nf_dispatch: float = 270.0
    ring_enqueue: float = 70.0
    ring_dequeue: float = 70.0
    cross_core_sync: float = 300.0

    parse: float = 180.0
    exact_match_lookup: float = 80.0
    acl_rule_scan: float = 12.0
    field_write: float = 60.0
    merged_field_write: float = 35.0
    checksum_update: float = 90.0
    encap_op: float = 150.0
    decap_op: float = 110.0
    drop_free: float = 60.0

    payload_byte_scan: float = 0.75  # Aho-Corasick DPI, ~2.7 B/cycle w/ SIMD
    payload_byte_write: float = 1.2
    pattern_match_setup: float = 220.0
    counter_update: float = 260.0
    hash_compute: float = 50.0
    nat_port_alloc: float = 200.0
    connection_track: float = 45.0

    fid_hash: float = 45.0
    metadata_attach: float = 15.0
    metadata_detach: float = 10.0
    mat_begin_record: float = 30.0
    mat_record_ha: float = 40.0
    mat_record_sf: float = 50.0
    event_register: float = 60.0
    event_check: float = 25.0
    global_mat_lookup: float = 150.0
    fast_path_dispatch: float = 200.0
    consolidate_action: float = 90.0
    global_rule_install: float = 120.0
    sf_invoke: float = 25.0
    worker_fork: float = 40.0
    worker_join: float = 50.0
    flow_delete: float = 80.0

    @cached_property
    def op_cycles(self) -> Dict[Operation, float]:
        """Operation -> cycles table, built once per model instance.

        Meters converting themselves to cycles hit this dict instead of
        paying an enum-attribute ``getattr`` per operation per packet.
        (``cached_property`` writes straight into ``__dict__``, which is
        allowed on a frozen dataclass; ``with_overrides`` copies get a
        fresh cache.)
        """
        return {operation: getattr(self, operation.value) for operation in Operation}

    def cycles_for(self, operation: Operation) -> float:
        return self.op_cycles[operation]

    def ns_per_cycle(self) -> float:
        return 1.0 / self.clock_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.ns_per_cycle()

    def cycles_to_us(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) / 1000.0

    def with_overrides(self, **overrides: float) -> "CostModel":
        """A copy with some constants replaced (ablation benches)."""
        return replace(self, **overrides)

    @classmethod
    def operation_names(cls) -> Dict[str, float]:
        """Mapping of every cost field to its default value (docs/tests)."""
        return {f.name: f.default for f in fields(cls) if f.name != "clock_ghz"}


class CycleMeter:
    """Accumulates operation counts plus direct cycle charges.

    NFs and framework components charge operations while processing one
    packet (or one stage of one packet); the platform converts the meter
    to cycles with its :class:`CostModel`.
    """

    __slots__ = ("counts", "direct_cycles", "_memo_model", "_memo_cycles")

    def __init__(self):
        self.counts: Dict[Operation, float] = {}
        self.direct_cycles = 0.0
        #: memo of the last cycles() conversion — hot meters (e.g. the
        #: shared fixed meter of a compiled flow) are converted with the
        #: same model thousands of times without changing in between
        self._memo_model: Optional[CostModel] = None
        self._memo_cycles = 0.0

    def charge(self, operation: Operation, times: float = 1.0) -> None:
        if times:
            self.counts[operation] = self.counts.get(operation, 0.0) + times
            self._memo_model = None

    def charge_cycles(self, cycles: float) -> None:
        self.direct_cycles += cycles
        self._memo_model = None

    def merge(self, other: "CycleMeter") -> None:
        for operation, times in other.counts.items():
            self.counts[operation] = self.counts.get(operation, 0.0) + times
        self.direct_cycles += other.direct_cycles
        self._memo_model = None

    def cycles(self, model: CostModel) -> float:
        if self._memo_model is model:
            return self._memo_cycles
        total = self.direct_cycles
        table = model.op_cycles
        for operation, times in self.counts.items():
            total += table[operation] * times
        self._memo_model = model
        self._memo_cycles = total
        return total

    def count(self, operation: Operation) -> float:
        return self.counts.get(operation, 0.0)

    def reset(self) -> None:
        self.counts.clear()
        self.direct_cycles = 0.0
        self._memo_model = None

    def copy(self) -> "CycleMeter":
        meter = CycleMeter()
        meter.counts = dict(self.counts)
        meter.direct_cycles = self.direct_cycles
        return meter

    def __repr__(self) -> str:
        ops = sum(self.counts.values())
        return f"<CycleMeter {len(self.counts)} op kinds, {ops:.0f} ops, +{self.direct_cycles:.0f}cyc>"


class NullMeter(CycleMeter):
    """A meter that records nothing (functional-only runs)."""

    def charge(self, operation: Operation, times: float = 1.0) -> None:
        return None

    def charge_cycles(self, cycles: float) -> None:
        return None


#: Shared do-nothing meter for purely functional processing.
NULL_METER = NullMeter()
