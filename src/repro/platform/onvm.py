"""The OpenNetVM platform model (§VI-A).

"OpenNetVM runs each NF on one dedicated core, and interconnects NFs
leveraging RX/TX queues that deliver shared memory packet descriptors."
Consequences modelled here:

- every NF hop costs a ring enqueue + dequeue plus a cross-core cache
  transfer, so per-hop transport is pricier than BESS's in-process
  dispatch (this is why header-action consolidation contributes
  relatively less of the win on ONVM than state-function parallelism —
  Fig. 7's 58.9% vs 50.6% split);
- the chain is *pipelined*: each NF core works on a different packet, so
  the original chain's throughput stays roughly flat as the chain grows
  (Fig. 5a, Fig. 8) even though latency keeps climbing;
- the SpeedyBox prototype puts the Global MAT at the NF Manager and the
  packet classifier at the Manager's RX thread; fast-path packets are
  served entirely by the Manager core and bypass the NF cores.

Stage topology for loaded runs: stage 0 is the Manager (classifier +
Global MAT + NIC), stages 1..k the NF cores.  Slow-path packets visit
0 → 1 → ... → k; fast-path packets are served at stage 0 alone — they
can overtake slow packets, as in the real system.

Core budget: the paper's testbed has 14 physical cores, which caps ONVM
chains at 5 NFs (manager + NFs + housekeeping); :attr:`MAX_CHAIN_LENGTH`
enforces the same limit so Fig. 8 reproduces the constraint.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.framework import ProcessReport, ServiceChain, SpeedyBox
from repro.platform.base import Platform, PlatformConfig, StagePlan


class OpenNetVMPlatform(Platform):
    """Pipelined, core-per-NF chain execution."""

    name = "onvm"

    #: Fig. 8: "we can only support a maximum chain length of 5, limited
    #: by the number of cores on our testbed".
    MAX_CHAIN_LENGTH = 5

    def __init__(
        self,
        runtime: Union[ServiceChain, SpeedyBox],
        config: Optional[PlatformConfig] = None,
        enforce_core_limit: bool = True,
        **kwargs,
    ):
        super().__init__(runtime, config, **kwargs)
        if enforce_core_limit and len(runtime.nfs) > self.MAX_CHAIN_LENGTH:
            raise ValueError(
                f"OpenNetVM on the paper's 14-core testbed supports at most "
                f"{self.MAX_CHAIN_LENGTH} NFs per chain, got {len(runtime.nfs)} "
                f"(pass enforce_core_limit=False to lift the testbed limit)"
            )

    def _transport_cycles_per_hop(self) -> float:
        model = self.costs
        return model.ring_enqueue + model.ring_dequeue + model.cross_core_sync

    def _parallel_sync_cycles(self) -> float:
        # Workers are separate cores: each parallel wave pays extra
        # signalling on top of fork/join — a cache-line flag flip, about
        # half a full descriptor transfer.
        return self.costs.cross_core_sync / 2.0

    def _fast_path_extra_cycles(self) -> float:
        # The Manager hands fast-path packets to the TX thread over a
        # shared-memory ring — inter-core overhead the fast path cannot
        # consolidate away (this is why header-action consolidation
        # contributes relatively less on ONVM, §VII-B1 / Fig. 7).
        return self.costs.ring_enqueue + self.costs.ring_dequeue

    # -- loaded mode: manager + one stage per NF + the SF worker stage --------

    def _stage_count(self) -> int:
        # Stage 0: Manager.  Stages 1..k: NF cores.  Stage k+1: the
        # worker pool running offloaded fast-path SF waves — serial,
        # because state functions of the same flow must not race (and
        # the saturation benchmarks drive a single flow).
        return 2 + len(self.runtime.nfs)

    def _stage_label(self, stage_index: int) -> str:
        # Stage 0 is the Manager core, 1..k the per-NF cores, k+1 the
        # SF worker pool — one trace track / ring label per core.
        if stage_index == 0:
            return "manager"
        if stage_index == 1 + len(self.runtime.nfs):
            return "sf-workers"
        return f"nf:{self.runtime.nfs[stage_index - 1].name}"

    def _stage_plan(self, report: ProcessReport) -> StagePlan:
        model = self.costs
        hop = self._transport_cycles_per_hop()
        manager_cycles = report.fixed_meter.cycles(model) + model.nic_rx

        if report.is_fast:
            # The Manager executes the fixed fast path plus the inline
            # (single-batch) waves and the fork/join of parallel waves;
            # parallel batches run on worker cores while the Manager
            # pipelines on to the next packet, so they appear as a pure
            # delay hop, not Manager occupancy.
            __, sf_latency, sf_main = self._time_sf_waves(report)
            manager_total = (
                manager_cycles + sf_main + self._fast_path_extra_cycles() + model.nic_tx
            )
            offloaded = sf_latency - sf_main
            plan: StagePlan = [(0, model.cycles_to_ns(manager_total))]
            if offloaded > 0:
                worker_stage = 1 + len(self.runtime.nfs)
                plan.append((worker_stage, model.cycles_to_ns(offloaded)))
            return plan

        plan: StagePlan = [(0, model.cycles_to_ns(manager_cycles))]
        stage_by_name = {nf.name: index + 1 for index, nf in enumerate(self.runtime.nfs)}
        for position, (nf_name, meter) in enumerate(report.nf_meters):
            stage_cycles = meter.cycles(model) + hop
            if position == len(report.nf_meters) - 1:
                stage_cycles += model.nic_tx
            plan.append((stage_by_name[nf_name], model.cycles_to_ns(stage_cycles)))
        return plan
