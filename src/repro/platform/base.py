"""Platform base: turning cycle meters into time, and timing into load.

A platform wraps either the baseline :class:`~repro.core.framework.ServiceChain`
or a :class:`~repro.core.framework.SpeedyBox` runtime and provides two
measurement modes:

- :meth:`Platform.process` — one packet at a time, unloaded: returns a
  :class:`PacketOutcome` with *work* cycles (total CPU spent, what the
  paper's "CPU cycle per packet" figures report) and *latency* cycles
  (wall-clock through the chain, where parallel state-function waves cost
  max-over-wave instead of sum).
- :meth:`Platform.run_load` — drive a whole packet sequence through the
  discrete-event engine to measure throughput and loaded latency.  The
  run is two-phase: packets are first processed functionally (collecting
  per-stage service times), then replayed temporally through the
  platform's core/pipeline topology.

Subclasses define the transport costs and the stage topology.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import PathTaken, ProcessReport, ServiceChain, SpeedyBox
from repro.net.packet import Packet
from repro.obs.hooks import CountingObserver, FanoutObserver, TracingObserver
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.span import FlowSpanRecorder
from repro.obs.timeline import trace_unloaded
from repro.obs.trace import NULL_TRACER, PacketTracer
from repro.platform.costs import CostModel, CycleMeter, Operation
from repro.sim import Engine, Get, Put, Request, Resource, Store, Timeout
from repro.sim.analytic import analytic_replay, plans_are_analytic
from repro.stats.summary import percentile_sorted


@dataclass
class PlatformConfig:
    """Knobs shared by both platforms."""

    cost_model: CostModel = field(default_factory=CostModel)
    #: worker cores available for parallel state-function waves
    worker_cores: int = 3
    #: ring capacity between pipeline stages (ONVM)
    ring_capacity: int = 4096
    #: DPDK-style RX/TX batching: driver costs amortise over the batch.
    #: 1 (default) = per-packet I/O; 32 is the typical DPDK burst.
    batch_size: int = 1
    #: steady-state flows compile into cached closures on SpeedyBox
    #: runtimes (repro.core.fastpath) — numerically identical, ~an order
    #: of magnitude less dispatch; False forces the interpreted path
    compiled_flows: bool = True
    #: loaded runs use the closed-form Lindley replay (repro.sim.analytic)
    #: when valid, falling back to the DES automatically; False forces
    #: the DES for every run
    analytic_replay: bool = True
    #: columnar PacketBatch inputs to run_load take the whole-batch lane
    #: (repro.core.batchlane) when the run is uninstrumented and compiled
    #: flows are on; False forces batches through the legacy per-packet
    #: oracle via batch.packet_view() — the equivalence baseline
    batch_lane: bool = True

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size!r}")


@dataclass
class PacketOutcome:
    """The timing result for one packet in unloaded mode.

    Three cycle counts, because the platforms are multi-core:

    - ``work_cycles`` — total CPU cycles spent anywhere (main core +
      workers + fork/join overhead);
    - ``latency_cycles`` — wall-clock through the chain (parallel waves
      cost max-over-wave, not sum);
    - ``main_core_cycles`` — cycles *executed* on the dispatching core
      (parallel waves contribute only their fork/join/sync overhead;
      the batches themselves run on worker cores).  This is what the
      paper's per-packet CPU counters on the chain core report.
    """

    packet: Packet
    report: ProcessReport
    work_cycles: float
    latency_cycles: float
    main_core_cycles: float
    latency_ns: float
    dropped: bool

    @property
    def path(self) -> PathTaken:
        return self.report.path

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1000.0


@dataclass
class LoadResult:
    """The result of a loaded run (throughput mode)."""

    offered: int
    delivered: int
    dropped: int
    makespan_ns: float
    latencies_ns: List[float]
    #: sorted copy of ``latencies_ns``, built on the first percentile
    #: query and reused afterwards; ``merge`` returns a *new* result, so
    #: the cache needs no invalidation hook — the length guard only
    #: protects against in-place appends to ``latencies_ns``
    _sorted_latencies: Optional[List[float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def throughput_mpps(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return (self.delivered + self.dropped) / (self.makespan_ns / 1000.0)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the loaded latencies.

        Delegates to :func:`repro.stats.summary.percentile_sorted` (rank
        = ``ceil(fraction * n)``); the previous ``int(fraction * n)``
        index was biased low for small samples — p100 of a 4-sample
        list only hit the maximum via the clamp.  The sort is cached:
        sweeps query p50/p90/p99 off one multi-thousand-sample run.
        """
        samples = self.latencies_ns
        if not samples:
            return 0.0
        ordered = self._sorted_latencies
        if ordered is None or len(ordered) != len(samples):
            ordered = sorted(samples)
            self._sorted_latencies = ordered
        return percentile_sorted(ordered, fraction)

    def merge(self, other: "LoadResult") -> "LoadResult":
        """Combine two runs as if their packets shared one run.

        Packet counts add; latency *samples* concatenate, so percentiles
        of the merged result are computed over the raw population — not
        averaged from the parts' pre-computed percentiles, which would
        be statistically wrong (the p99 of two replicas is not the mean
        of their p99s).  The makespan is the later finish line: the runs
        are taken to start at the same instant, which is exactly how a
        multi-replica cluster drives its replicas.
        """
        return LoadResult(
            offered=self.offered + other.offered,
            delivered=self.delivered + other.delivered,
            dropped=self.dropped + other.dropped,
            makespan_ns=max(self.makespan_ns, other.makespan_ns),
            latencies_ns=self.latencies_ns + other.latencies_ns,
        )

    @classmethod
    def merged(cls, results: Sequence["LoadResult"]) -> "LoadResult":
        """Fold :meth:`merge` over any number of per-replica results."""
        total = cls(offered=0, delivered=0, dropped=0, makespan_ns=0.0, latencies_ns=[])
        for result in results:
            total = total.merge(result)
        return total


#: Marker in ``ProcessReport.plan_cache`` slot 3: the span-sampling lean
#: loop wrote this entry *after* the flow finished recording, so a hit
#: may skip the per-packet skip-table probe entirely.  Entries written by
#: the spans-off loop (slot 3 ``None``) or a batch lane (slot 3 = the
#: lane) still carry a reusable plan but must not bypass span recording.
_SPAN_DONE = object()

#: A packet's temporal footprint: per-hop (stage_index, service_ns).
#: ``stage_index=None`` marks a pure delay with unbounded parallelism —
#: e.g. worker cores running a packet's SF wave while the ONVM manager
#: moves on to the next packet.
StagePlan = List[Tuple[Optional[int], float]]

#: bound on ``Platform._forensics_plan_info`` (one entry per distinct
#: plan, i.e. per flow) — past this the map is cleared rather than grown;
#: worst-K records from evicted-and-reborn flows just lose their flow-id
#: label, never their decomposition
_FORENSICS_INFO_CAP = 1 << 16


class _PlanInfoColumn:
    """Per-packet ``fids``/``fast_flags`` view over the plan-info map.

    ``column[i]`` resolves packet ``i``'s captured context through its
    plan's identity — built lazily, paid only for the handful of worst-K
    records the forensics engine actually labels.  Raises ``IndexError``
    for plans the capture never saw (cache hits predating the engine),
    which the engine maps to an absent label.
    """

    __slots__ = ("plans", "info", "slot")

    def __init__(self, plans, info, slot):
        self.plans = plans
        self.info = info
        self.slot = slot

    def __getitem__(self, index):
        entry = self.info.get(id(self.plans[index]))
        if entry is None:
            raise IndexError(index)
        return entry[self.slot]


def _is_packet_batch(packets) -> bool:
    """Duck-type check without importing repro.traffic at module load."""
    from repro.traffic.columnar import PacketBatch

    return isinstance(packets, PacketBatch)


def makespan_with_workers(durations: Sequence[float], workers: int) -> float:
    """Greedy list-scheduling makespan of a parallel wave on N workers.

    Longest-processing-time-first onto the earliest-finishing worker —
    how a real fork/join pool would behave for a handful of batches.
    """
    if not durations:
        return 0.0
    if workers <= 1 or len(durations) == 1:
        return sum(durations)
    finish = [0.0] * min(workers, len(durations))
    for duration in sorted(durations, reverse=True):
        slot = finish.index(min(finish))
        finish[slot] += duration
    return max(finish)


@dataclass
class PipelineRun:
    """The live plumbing of one platform's pipeline on a (shared) engine.

    ``run_load`` spawns exactly one of these on a private engine; a
    multi-replica cluster (``repro.scale``) spawns one per replica on a
    *shared* engine so the replicas' pipelines advance on the same
    simulated clock and can contend for a common core pool.
    """

    rings: List[Store]
    #: packet index -> offered time; the DES builds a dict, the analytic
    #: replay a list (packets arrive in index order) — both index the same
    arrival_at: Union[Dict[int, float], List[float]]
    completions: List[Tuple[int, float]]

    def to_load_result(self, offered: int, dropped: int) -> LoadResult:
        latencies = [finish - self.arrival_at[index] for index, finish in self.completions]
        makespan = max((finish for __, finish in self.completions), default=0.0)
        return LoadResult(
            offered=offered,
            delivered=offered - dropped,
            dropped=dropped,
            makespan_ns=makespan,
            latencies_ns=latencies,
        )


@dataclass
class ChainSetup:
    """Descriptor for constructing a platform run (used by benchmarks)."""

    name: str
    runtime: Union[ServiceChain, SpeedyBox]

    @property
    def with_speedybox(self) -> bool:
        return isinstance(self.runtime, SpeedyBox)


class Platform:
    """Abstract platform."""

    name = "platform"

    def __init__(
        self,
        runtime: Union[ServiceChain, SpeedyBox],
        config: Optional[PlatformConfig] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        tracer: PacketTracer = NULL_TRACER,
        label: Optional[str] = None,
        spans: Optional[FlowSpanRecorder] = None,
        timeseries=None,
        forensics=None,
    ):
        self.runtime = runtime
        self.config = config or PlatformConfig()
        if not self.config.compiled_flows and isinstance(runtime, SpeedyBox):
            # Legacy-path runs must not serve packets from closures that
            # were compiled before the platform took ownership.
            runtime.compile_fast_path = False
            runtime._compiled.clear()
        self.packets = 0
        #: set by the latest whole-batch lane run (None before one):
        #: offered / span_packets / admitted / dropped / plan_table_size
        self.last_lane_stats: Optional[dict] = None
        self.metrics = metrics
        self.tracer = tracer
        #: sampled flow-span recorder (repro.obs.span); unlike the tracer
        #: it coexists with the lean pass + analytic replay, so it is the
        #: way to see inside fast runs.  ``None`` = off (no per-packet
        #: cost beyond the lean loop's one dict probe when on).
        self.spans = spans
        #: gen-3 windowed telemetry (repro.obs.timeseries.TimeSeries) or
        #: None.  Loaded runs hand it the finished LoadResult *after*
        #: the run — windowing is post-run arithmetic, so attaching one
        #: costs nothing per packet and keeps the compiled/batch fast
        #: lanes (and the analytic replay) fully eligible.
        self.timeseries = timeseries
        #: tail-latency forensics engine (repro.obs.forensics) or None.
        #: Like the timeseries it consumes the *finished* replay — plans
        #: and completions after the run — so it never disqualifies the
        #: analytic or batch lanes and a disabled/absent engine costs one
        #: flag check per run, not per packet.  When enabled, the lean
        #: functional pass additionally captures per-packet flow ids and
        #: per-plan transfer overhead for the worst-K causal context.
        self.forensics = forensics
        #: ``id(plan) -> (plan, fid, is_fast, transfer_ns)`` captured by
        #: the functional passes of forensics-enabled runs.  Filled on
        #: the plan-cache *miss* path only — a steady-state packet pays
        #: nothing — and keyed per plan, which is per flow (steady
        #: singleton reports memoize exactly one plan each).  The plan
        #: itself is held in the value so a garbage-collected plan can
        #: never leave a recycled ``id()`` pointing at stale context;
        #: the map survives across runs (plan caches do too) and is
        #: cleared when it outgrows :data:`_FORENSICS_INFO_CAP`.
        self._forensics_plan_info: Dict[int, tuple] = {}
        #: runtime.fast_packets at the last time-series ingest — the
        #: delta is the run's fast-path hit count for the windows
        self._ts_fast_prev = 0
        #: packet index within the current loaded run, or None outside
        #: one — run_load sets it so sampled spans can be matched to the
        #: replay's simulated arrival/finish times
        self._span_run_index: Optional[int] = None
        #: instance label used for ring/track names; replicas of the same
        #: platform class override it so their metrics stay distinguishable
        self.label = label or self.name
        #: monotonic unloaded-mode timeline cursor (ns) for the tracer
        self._trace_clock_ns = 0.0
        self._m_packets = metrics.counter(
            "platform_packets_total", "packets timed by a platform"
        ).labels(platform=self.name)
        self._m_latency = metrics.histogram(
            "unloaded_latency_ns",
            "per-packet wall-clock latency in unloaded mode",
            buckets=(250, 500, 1000, 2000, 4000, 8000, 16000, 64000, 256000),
        ).labels(platform=self.name)

    @property
    def costs(self) -> CostModel:
        return self.config.cost_model

    @property
    def with_speedybox(self) -> bool:
        return isinstance(self.runtime, SpeedyBox)

    # -- per-packet timing (subclass hooks) ----------------------------------

    def _transport_cycles_per_hop(self) -> float:
        """Cycles to move a packet descriptor to the next NF."""
        raise NotImplementedError

    def _nic_cycles(self) -> float:
        """Per-packet NIC driver cost, amortised over the RX/TX batch."""
        model = self.costs
        return (model.nic_rx + model.nic_tx) / self.config.batch_size

    def _time_report(self, report: ProcessReport) -> Tuple[float, float, float]:
        """(work, latency, main-core) cycles for one packet's report.

        Memoized on the report (keyed by platform identity, so a report
        timed by two platforms is never cross-contaminated): loaded runs
        time every report twice — once in :meth:`process`, once in the
        stage-plan build.
        """
        cached = report.timing_cache
        if cached is not None and cached[0] is self:
            return cached[1], cached[2], cached[3]
        work, latency, main_core = self._time_report_uncached(report)
        report.timing_cache = (self, work, latency, main_core)
        return work, latency, main_core

    def _time_report_uncached(self, report: ProcessReport) -> Tuple[float, float, float]:
        model = self.costs
        fixed = report.fixed_meter.cycles(model)
        work = fixed + self._nic_cycles()
        latency = fixed + self._nic_cycles()
        main_core = fixed + self._nic_cycles()

        if report.is_fast:
            extra = self._fast_path_extra_cycles()
            sf_work, sf_latency, sf_main = self._time_sf_waves(report)
            work += sf_work + extra
            latency += sf_latency + extra
            main_core += sf_main + extra
        else:
            hop = self._transport_cycles_per_hop()
            for __, meter in report.nf_meters:
                stage = meter.cycles(model) + hop
                work += stage
                latency += stage
                main_core += stage
        return work, latency, main_core

    def _time_sf_waves(self, report: ProcessReport) -> Tuple[float, float, float]:
        """(work, wall-clock, main-core) cycles of the SF schedule.

        Single-batch waves run inline on the main core; parallel waves
        fork to workers — the main core spends only fork/join/sync on
        them, wall-clock grows by the wave's makespan, and total work by
        the sum of batch costs plus overhead.
        """
        model = self.costs
        work = 0.0
        latency = 0.0
        main_core = 0.0
        for wave in report.sf_waves:
            durations = [meter.cycles(model) for __, meter in wave]
            if len(durations) == 1:
                work += durations[0]
                latency += durations[0]
                main_core += durations[0]
                continue
            overhead = model.worker_fork + model.worker_join + self._parallel_sync_cycles()
            work += sum(durations) + overhead
            latency += makespan_with_workers(durations, self.config.worker_cores) + overhead
            main_core += overhead
        return work, latency, main_core

    def _parallel_sync_cycles(self) -> float:
        """Extra synchronisation a parallel wave costs on this platform."""
        return 0.0

    def _fast_path_extra_cycles(self) -> float:
        """Platform-specific fixed overhead of the fast path (per packet)."""
        return 0.0

    # -- forensics hooks (transfer-overhead attribution) ---------------------

    def _plan_transfer_ns(self, report: ProcessReport) -> float:
        """Transport-overhead ns inside this report's stage plan.

        The share of the plan's total service time spent moving the
        packet rather than processing it — NIC amortisation plus the
        platform's inter-NF transport (dispatch / ring hops).  Used by
        the forensics decomposition; clamped into the plan total at the
        split, so a generous estimate cannot break exactness.
        """
        model = self.costs
        transport = 0.0
        if report.is_fast:
            transport = self._fast_path_extra_cycles()
        else:
            transport = len(report.nf_meters) * self._transport_cycles_per_hop()
        return model.cycles_to_ns(self._nic_cycles() + transport)

    def _transfer_estimate_for_plan(self, plan: StagePlan) -> float:
        """Transfer estimate when only the plan shape is available.

        The batch lane's plan table has no reports to consult; table
        plans are steady fast-path flows, so the NIC share plus the
        fast-path extra is the right model.  Multi-hop (slow-path)
        plans add one transport hop per extra stage.
        """
        model = self.costs
        cycles = self._nic_cycles()
        if len(plan) <= 1:
            cycles += self._fast_path_extra_cycles()
        else:
            cycles += (len(plan) - 1) * self._transport_cycles_per_hop()
        return model.cycles_to_ns(cycles)

    def _forensics_info_map(self) -> Optional[Dict[int, tuple]]:
        """The plan-info capture map, or None when forensics is off.

        Bounded: once the map outgrows :data:`_FORENSICS_INFO_CAP`
        distinct plans it is cleared — future worst-K records from
        already-cached flows lose their flow-id/fast labels (and fall
        back to the plan-shape transfer estimate), nothing else.
        """
        forensics = self.forensics
        if forensics is None or not forensics.enabled:
            return None
        info = self._forensics_plan_info
        if len(info) > _FORENSICS_INFO_CAP:
            info.clear()
        return info

    # -- unloaded mode ---------------------------------------------------------

    def process(self, packet: Packet) -> PacketOutcome:
        """Run one packet functionally and time it in isolation."""
        self.packets += 1
        report = self.runtime.process(packet)
        work, latency, main_core = self._time_report(report)
        spans = self.spans
        if spans is not None:
            index = self._span_run_index
            if index is not None:
                self._span_run_index = index = index + 1
            if spans.skip.get(report.fid) is None:
                spans.record(report, index)
        self._m_packets.inc()
        self._m_latency.observe(self.costs.cycles_to_ns(latency))
        if self.tracer.enabled:
            self._trace_clock_ns = trace_unloaded(
                self.tracer, self, report, self._trace_clock_ns, self.packets - 1
            )
        return PacketOutcome(
            packet=packet,
            report=report,
            work_cycles=work,
            latency_cycles=latency,
            main_core_cycles=main_core,
            latency_ns=self.costs.cycles_to_ns(latency),
            dropped=report.dropped,
        )

    def process_all(self, packets: Sequence[Packet]) -> List[PacketOutcome]:
        return [self.process(packet) for packet in packets]

    # -- loaded mode (throughput) ----------------------------------------------

    def _stage_plan(self, report: ProcessReport) -> StagePlan:
        """Map a report to (stage_index, service_ns) hops for the replay."""
        raise NotImplementedError

    def _stage_count(self) -> int:
        raise NotImplementedError

    def _stage_label(self, stage_index: int) -> str:
        """Human name for a pipeline stage (trace track / ring metric label)."""
        return f"stage{stage_index}"

    def run_load(
        self,
        packets: Sequence[Packet],
        inter_arrival_ns: float = 0.0,
        use_timestamps: bool = False,
    ) -> LoadResult:
        """Two-phase loaded run: functional pass, then temporal replay.

        ``inter_arrival_ns=0`` offers packets back-to-back (saturation):
        the resulting throughput is the platform's capacity.  With
        ``use_timestamps=True`` packets arrive at their recorded
        ``timestamp_ns`` offsets instead (trace replay; timestamps must
        be non-decreasing).

        ``packets`` may also be a columnar
        :class:`~repro.traffic.columnar.PacketBatch`: eligible runs (see
        :meth:`_batch_lane_eligible`) take the whole-batch lane, anything
        else streams the batch through the per-packet path via
        :meth:`~repro.traffic.columnar.PacketBatch.packet_view` — either
        way the result is exactly what the materialized packet list would
        have produced.
        """
        if _is_packet_batch(packets):
            if self._batch_lane_eligible(use_timestamps):
                return self._run_load_batch(packets, inter_arrival_ns)
            packets = packets.packet_view()
        spans = self.spans
        forensics = self.forensics
        forensics_on = forensics is not None and forensics.enabled
        if spans is not None:
            spans.begin_run()
            self._span_run_index = -1
        try:
            plans, gaps, dropped = self._functional_pass(
                packets, inter_arrival_ns, use_timestamps
            )
        finally:
            self._span_run_index = None
        index_latencies = None
        if self._analytic_valid(plans):
            if forensics_on:
                index_latencies = array("d")
            arrival_at, completions = analytic_replay(
                plans,
                gaps,
                self._stage_count(),
                self.config.ring_capacity,
                index_latencies=index_latencies,
            )
            run = PipelineRun(rings=[], arrival_at=arrival_at, completions=completions)
            lane = "analytic"
        else:
            engine = Engine()
            self._attach_observer(engine)
            run = self._spawn_pipeline(engine, plans, gaps)
            engine.run()
            self._publish_load_metrics(run.rings)
            lane = "des"
        if spans is not None:
            spans.annotate_loaded(run.arrival_at, run.completions)
        result = run.to_load_result(offered=len(plans), dropped=dropped)
        if self.timeseries is not None:
            self._ingest_timeseries(result, inter_arrival_ns)
        if forensics_on:
            info = self._forensics_plan_info
            forensics.observe_run(
                self,
                plans,
                run.arrival_at,
                run.completions,
                replica=self.label,
                lane=lane,
                fids=_PlanInfoColumn(plans, info, 1) if info else None,
                fast_flags=_PlanInfoColumn(plans, info, 2) if info else None,
                transfers={pid: entry[3] for pid, entry in info.items()} or None,
                index_latencies=index_latencies,
            )
        return result

    def _ingest_timeseries(self, result: LoadResult, inter_arrival_ns: float) -> None:
        """Window a finished run into the attached TimeSeries (post-run,
        zero per-packet cost; see ``TimeSeries.ingest_result``)."""
        fast_now = getattr(self.runtime, "fast_packets", 0)
        fast_delta = fast_now - self._ts_fast_prev
        self._ts_fast_prev = fast_now
        self.timeseries.ingest_result(
            result,
            inter_arrival_ns=inter_arrival_ns,
            replica=self.label,
            fast_hits=max(0, fast_delta),
        )

    def _batch_lane_eligible(self, use_timestamps: bool) -> bool:
        """May a PacketBatch take the whole-batch lane on this platform?

        The lane serves steady spans without per-packet reports, so the
        per-packet instrumentation surfaces must be off: metrics,
        tracer, timestamped arrival.  A :class:`FlowSpanRecorder` is
        allowed — the lane routes its sampled flows through the scalar
        oracle so they keep full span coverage while unsampled flows
        stay on the array path (see ``repro.core.batchlane``).  A
        ``timeseries`` never disqualifies: it ingests the finished
        result after the run.  The lane also requires the compiled fast
        path (the lane *is* a dispatcher over compiled closures) on a
        SpeedyBox runtime.  Ineligible batches stream through
        ``packet_view()`` — correct, just per-packet.
        """
        config = self.config
        return (
            config.batch_lane
            and config.compiled_flows
            and not use_timestamps
            and not self.metrics.enabled
            and not self.tracer.enabled
            and isinstance(self.runtime, SpeedyBox)
            and self.runtime.compile_fast_path
        )

    def _run_load_batch(self, batch, inter_arrival_ns: float) -> LoadResult:
        """Loaded run of a columnar batch through the whole-batch lane."""
        from repro.core.batchlane import BatchLane
        from repro.sim.analytic import analytic_replay_vector

        runtime = self.runtime
        spans = self.spans
        if spans is not None:
            spans.begin_run()
        previous_memo = runtime.memoize_setup
        runtime.memoize_setup = True
        lane = BatchLane(self, batch)
        try:
            table, plan_ids, dropped = lane.run()
        finally:
            runtime.memoize_setup = previous_memo
        offered = len(batch)
        self.packets += offered
        # Lane introspection (the batch analogue of the per-packet
        # counters): how much of the run the array path actually served.
        # A dict, not audit events — the lane's audit stream must stay
        # event-for-event identical to the per-packet oracle's.
        self.last_lane_stats = {
            "offered": offered,
            "span_packets": lane.span_packets,
            "admitted": lane.admitted,
            "dropped": dropped,
            "plan_table_size": len(table),
        }

        forensics = self.forensics
        forensics_on = forensics is not None and forensics.enabled
        if inter_arrival_ns == 0 and self.config.analytic_replay:
            vectored = analytic_replay_vector(table, plan_ids, self.config.ring_capacity)
            if vectored is not None:
                latencies, makespan = vectored
                result = LoadResult(
                    offered=offered,
                    delivered=offered - dropped,
                    dropped=dropped,
                    makespan_ns=makespan,
                    latencies_ns=latencies,
                )
                if self.timeseries is not None:
                    self._ingest_timeseries(result, inter_arrival_ns)
                if forensics_on:
                    forensics.observe_batch(
                        self, table, plan_ids, latencies,
                        replica=self.label, batch=batch,
                    )
                return result
        # General case: expand the plan table per packet and reuse the
        # scalar replay machinery (closed form when valid, DES otherwise).
        plans = [table[pid] for pid in plan_ids]
        gaps = [inter_arrival_ns] * offered
        if gaps:
            gaps[0] = 0.0
        index_latencies = None
        if self._analytic_valid(plans):
            if forensics_on:
                index_latencies = array("d")
            arrival_at, completions = analytic_replay(
                plans,
                gaps,
                self._stage_count(),
                self.config.ring_capacity,
                index_latencies=index_latencies,
            )
            run = PipelineRun(rings=[], arrival_at=arrival_at, completions=completions)
            lane = "analytic"
        else:
            engine = Engine()
            self._attach_observer(engine)
            run = self._spawn_pipeline(engine, plans, gaps)
            engine.run()
            self._publish_load_metrics(run.rings)
            lane = "des"
        if spans is not None:
            spans.annotate_loaded(run.arrival_at, run.completions)
        result = run.to_load_result(offered=offered, dropped=dropped)
        if self.timeseries is not None:
            self._ingest_timeseries(result, inter_arrival_ns)
        if forensics_on:
            forensics.observe_run(
                self, plans, run.arrival_at, run.completions,
                replica=self.label, lane=lane, index_latencies=index_latencies,
            )
        return result

    def _analytic_valid(self, plans: Sequence[StagePlan]) -> bool:
        """May this run use the closed-form replay instead of the DES?

        The analytic recursion cannot express observer instrumentation
        (metrics/tracer hooks see every engine event), shared core pools
        (only the cluster path passes one), pure-delay hops or
        multi-producer stage graphs — those fall back to the DES.
        """
        if not self.config.analytic_replay:
            return False
        if self.metrics.enabled or self.tracer.enabled:
            return False
        return plans_are_analytic(plans)

    def _functional_pass(
        self,
        packets: Sequence[Packet],
        inter_arrival_ns: float,
        use_timestamps: bool,
    ) -> Tuple[List[StagePlan], List[float], int]:
        """Phase one of a loaded run: process functionally, plan temporally.

        Returns (stage plans, per-packet arrival gaps, drop count); the
        gap of packet ``i`` is the Timeout its source takes before
        offering it, so ``gaps[0]`` is the delay to the first arrival.
        """
        if (
            not self.metrics.enabled
            and not self.tracer.enabled
            and (self.config.compiled_flows or self.config.analytic_replay)
        ):
            return self._functional_pass_lean(packets, inter_arrival_ns, use_timestamps)
        plans: List[StagePlan] = []
        gaps: List[float] = []
        dropped = 0
        previous_ts: Optional[float] = None
        capture = self._forensics_info_map()
        for packet in packets:
            if use_timestamps:
                if previous_ts is not None and packet.timestamp_ns < previous_ts:
                    raise ValueError("trace timestamps must be non-decreasing for replay")
                gaps.append(0.0 if previous_ts is None else packet.timestamp_ns - previous_ts)
                previous_ts = packet.timestamp_ns
            else:
                gaps.append(inter_arrival_ns if plans else 0.0)
            outcome = self.process(packet)
            plan = self._stage_plan(outcome.report)
            plans.append(plan)
            if capture is not None and id(plan) not in capture:
                report = outcome.report
                capture[id(plan)] = (
                    plan, report.fid, report.is_fast, self._plan_transfer_ns(report)
                )
            if outcome.dropped:
                dropped += 1
        return plans, gaps, dropped

    def _functional_pass_lean(
        self,
        packets: Sequence[Packet],
        inter_arrival_ns: float,
        use_timestamps: bool,
    ) -> Tuple[List[StagePlan], List[float], int]:
        """The functional pass without per-packet outcome assembly.

        Loaded runs only need (plan, gap, dropped) per packet — the
        :class:`PacketOutcome` wrapper, its unloaded-latency conversion
        and the metric observations :meth:`process` performs per packet
        exist for instrumented runs.  With metrics and tracing off they
        are dead weight, so the fast engine (either half of it) drives
        the runtime directly; forcing the full legacy configuration
        (``compiled_flows=False, analytic_replay=False``) restores the
        original pass for honest wall-clock baselines.  Steady-state
        singleton reports (``report.steady``) map to one cached stage
        plan, skipping the per-packet timing walk entirely.
        """
        plans: List[StagePlan] = []
        dropped = 0
        if use_timestamps:
            gaps = []
            previous_ts: Optional[float] = None
            for packet in packets:
                if previous_ts is not None and packet.timestamp_ns < previous_ts:
                    raise ValueError("trace timestamps must be non-decreasing for replay")
                gaps.append(0.0 if previous_ts is None else packet.timestamp_ns - previous_ts)
                previous_ts = packet.timestamp_ns
        else:
            gaps = [inter_arrival_ns] * len(packets)
            if gaps:
                gaps[0] = 0.0
        process = self.runtime.process
        stage_plan = self._stage_plan
        append_plan = plans.append
        spans = self.spans
        capture = self._forensics_info_map()
        if spans is None and capture is None:
            for packet in packets:
                report = process(packet)
                if report.dropped:
                    dropped += 1
                if report.steady:
                    # Memoized on the report itself (ProcessReport.plan_cache):
                    # an id()-keyed side table would go stale once bounded
                    # flow tables let steady reports be garbage-collected
                    # mid-run and their ids recycled.
                    cached = report.plan_cache
                    if cached is not None and cached[0] is self:
                        plan = cached[1]
                    else:
                        plan = stage_plan(report)
                        report.plan_cache = (self, plan, None, None)
                else:
                    plan = stage_plan(report)
                append_plan(plan)
        elif spans is None:
            # Forensics-capture variant: identical to the spans-off loop
            # body on the steady-state plan-cache *hit* path — capture
            # happens only on the miss path (once per flow) and for
            # non-steady packets, so per-packet cost vs. the
            # uninstrumented loop above is zero.  The disabled-forensics
            # overhead cell gates on the loop above keeping its shape;
            # the enabled cell gates on this one.
            plan_transfer = self._plan_transfer_ns
            for packet in packets:
                report = process(packet)
                if report.dropped:
                    dropped += 1
                if report.steady:
                    cached = report.plan_cache
                    if cached is not None and cached[0] is self:
                        plan = cached[1]
                    else:
                        plan = stage_plan(report)
                        report.plan_cache = (self, plan, None, None)
                        capture[id(plan)] = (
                            plan, report.fid, report.is_fast, plan_transfer(report)
                        )
                else:
                    plan = stage_plan(report)
                    capture[id(plan)] = (
                        plan, report.fid, report.is_fast, plan_transfer(report)
                    )
                append_plan(plan)
        else:
            # Span-sampling variant.  The trick that keeps 1-in-N
            # sampling inside the 5% overhead gate: a steady singleton
            # only enters the plan cache once its flow is *done*
            # recording (unsampled, or past the span cap), so the
            # steady-state majority takes the exact spans-off loop body
            # — cache probe, append, nothing else.  Flows still being
            # recorded miss the cache and rebuild their plan per packet,
            # which only the sampled minority pays.
            skip_get = spans.skip.get
            record_span = spans.record
            for packet in packets:
                report = process(packet)
                if report.dropped:
                    dropped += 1
                if report.steady:
                    cached = report.plan_cache
                    if cached is not None and cached[0] is self:
                        if cached[3] is _SPAN_DONE:
                            append_plan(cached[1])
                            continue
                        plan = cached[1]
                    else:
                        plan = stage_plan(report)
                    if skip_get(report.fid) is None:
                        record_span(report, len(plans))
                    if skip_get(report.fid) is not None:
                        # Flow won't record again: cache its plan so
                        # later packets skip this branch entirely.
                        report.plan_cache = (self, plan, None, _SPAN_DONE)
                    append_plan(plan)
                else:
                    plan = stage_plan(report)
                    append_plan(plan)
                    if skip_get(report.fid) is None:
                        record_span(report, len(plans) - 1)
                if capture is not None and id(plan) not in capture:
                    capture[id(plan)] = (
                        plan, report.fid, report.is_fast,
                        self._plan_transfer_ns(report),
                    )
        self.packets += len(plans)
        return plans, gaps, dropped

    def _spawn_pipeline(
        self,
        engine: Engine,
        plans: Sequence[StagePlan],
        gaps: Sequence[float],
        core_pool: Optional[Resource] = None,
    ) -> PipelineRun:
        """Register this platform's stage pipeline on ``engine``.

        ``gaps[i]`` is the source's Timeout before offering packet ``i``.
        ``core_pool`` (optional) is a shared :class:`Resource` every stage
        worker must hold while serving a packet — how a replica cluster
        models oversubscribed physical cores.  Pure-delay hops (offloaded
        SF waves) stay outside the pool, mirroring single-platform runs
        where worker cores are modelled as a free-running pool.
        """
        stage_count = self._stage_count()
        label = self.label
        rings = [
            Store(
                engine,
                capacity=self.config.ring_capacity,
                name=f"{label}:{self._stage_label(i)}",
            )
            for i in range(stage_count)
        ]
        done = Store(engine, name=f"{label}:done")
        arrival_at: Dict[int, float] = {}
        completions: List[Tuple[int, float]] = []
        tracing = self.tracer.enabled

        def delay_hop(packet_index: int, hop: int, plan: StagePlan):
            """A None-stage hop: pure delay, no core contention."""
            __, service_ns = plan[hop]
            started = engine.now
            yield Timeout(service_ns)
            if tracing:
                self.tracer.span(
                    f"pkt{packet_index}",
                    f"{label}:offload",
                    started,
                    engine.now - started,
                    hop=hop,
                )
            yield from forward(packet_index, hop, plan)

        def forward(packet_index: int, hop: int, plan: StagePlan):
            if hop + 1 < len(plan):
                next_stage = plan[hop + 1][0]
                if next_stage is None:
                    engine.add_process(delay_hop(packet_index, hop + 1, plan))
                else:
                    yield Put(rings[next_stage], (packet_index, hop + 1, plan))
            else:
                yield Put(done, (packet_index, engine.now))

        def source():
            for index, plan in enumerate(plans):
                if gaps[index] > 0:
                    yield Timeout(gaps[index])
                arrival_at[index] = engine.now
                first_stage = plan[0][0] if plan else stage_count - 1
                if first_stage is None:
                    engine.add_process(delay_hop(index, 0, plan))
                else:
                    yield Put(rings[first_stage], (index, 0, plan))

        def stage_worker(stage_index: int):
            track = f"{label}:{self._stage_label(stage_index)}"
            while True:
                item = yield Get(rings[stage_index])
                if item is None:
                    return
                packet_index, hop, plan = item
                __, service_ns = plan[hop]
                if core_pool is not None:
                    yield Request(core_pool)
                started = engine.now
                yield Timeout(service_ns)
                if core_pool is not None:
                    yield core_pool.release()
                if tracing:
                    self.tracer.span(
                        f"pkt{packet_index}", track, started, engine.now - started, hop=hop
                    )
                yield from forward(packet_index, hop, plan)

        def sink():
            for __ in range(len(plans)):
                packet_index, finished_at = yield Get(done)
                completions.append((packet_index, finished_at))
            for ring in rings:
                yield Put(ring, None)  # poison pills

        engine.add_process(source(), name=f"{label}:source")
        for stage_index in range(stage_count):
            engine.add_process(stage_worker(stage_index), name=f"{label}:stage{stage_index}")
        engine.add_process(sink(), name=f"{label}:sink")
        return PipelineRun(rings=rings, arrival_at=arrival_at, completions=completions)

    # -- loaded-mode observability --------------------------------------------

    def _attach_observer(self, engine: Engine) -> None:
        """Hook the replay engine up to the tracer and/or metrics registry.

        The counting observer streams engine counters (resumes, blocked
        puts/gets) straight into the registry; the tracing observer
        streams ring occupancy into the tracer.  With both disabled the
        engine's observer stays ``None`` and the replay is untouched.
        """
        observers = []
        if self.metrics.enabled:
            observers.append(CountingObserver(self.metrics))
        if self.tracer.enabled:
            observers.append(TracingObserver(self.tracer))
        if len(observers) == 1:
            engine.observer = observers[0]
        elif observers:
            engine.observer = FanoutObserver(*observers)

    def _publish_load_metrics(self, rings: Sequence[Store]) -> None:
        """Per-ring enqueue/dequeue/high-water after a loaded run."""
        if not self.metrics.enabled:
            return
        enqueues = self.metrics.counter(
            "ring_enqueue_total", "descriptors enqueued per inter-stage ring"
        )
        dequeues = self.metrics.counter(
            "ring_dequeue_total", "descriptors dequeued per inter-stage ring"
        )
        high_water = self.metrics.gauge(
            "ring_high_watermark", "deepest occupancy each ring reached"
        )
        for ring in rings:
            enqueues.labels(ring=ring.name).inc(ring.total_put)
            dequeues.labels(ring=ring.name).inc(ring.total_got)
            high_water.labels(ring=ring.name).set(ring.high_watermark)
        self.metrics.counter(
            "load_runs_total", "run_load invocations"
        ).labels(platform=self.name).inc()

    def reset(self) -> None:
        self.packets = 0
        self.last_lane_stats = None
        self._trace_clock_ns = 0.0
        self._ts_fast_prev = 0
        self._forensics_plan_info.clear()
        self.runtime.reset()
