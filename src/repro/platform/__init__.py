"""NFV execution platforms.

Two platform models mirror the paper's prototypes (§VI-A):

- :mod:`repro.platform.bess` — BESS: the whole service chain runs
  run-to-completion as a single process on one dedicated core.
- :mod:`repro.platform.onvm` — OpenNetVM: each NF runs on its own core;
  packet descriptors travel through shared-memory RX/TX rings; the NF
  Manager hosts the Global MAT and the packet classifier.

Both are driven by the same cycle-cost model (:mod:`repro.platform.costs`)
and measured either packet-at-a-time (unloaded latency / CPU cycles) or
under load on the discrete-event engine (throughput, queueing latency).

Note: the platform classes are exposed lazily (PEP 562) because
``repro.core`` depends on :mod:`repro.platform.costs` while
:mod:`repro.platform.base` depends on ``repro.core`` — the cost model is
a leaf, the platforms sit above the core.
"""

from repro.platform.costs import CostModel, CycleMeter, Operation

__all__ = [
    "BessPlatform",
    "ChainSetup",
    "CostModel",
    "CycleMeter",
    "LoadResult",
    "OpenNetVMPlatform",
    "Operation",
    "PacketOutcome",
    "Platform",
    "PlatformConfig",
]

_LAZY = {
    "Platform": "repro.platform.base",
    "PlatformConfig": "repro.platform.base",
    "PacketOutcome": "repro.platform.base",
    "LoadResult": "repro.platform.base",
    "ChainSetup": "repro.platform.base",
    "BessPlatform": "repro.platform.bess",
    "OpenNetVMPlatform": "repro.platform.onvm",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.platform' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
