"""The bounded per-replica input-packet log.

Checkpoint + log is the classic recovery pair: the snapshot bounds how
far back recovery must reach, the log carries everything since.  Each
replica gets one :class:`PacketLog`; the cluster appends a *pre-
processing clone* of every packet it dispatches there (the pipeline
mutates packets in place — NAT rewrites headers — so logging after the
fact would replay the wrong bytes).  Entries carry a monotonically
increasing sequence number; each flow checkpoint records the log
position at capture, and recovery replays only the entries past it.

The log is bounded.  When it fills, the owner (the
:class:`~repro.ft.failover.FaultTolerance` coordinator) takes a
*pressure checkpoint* and trims, keeping memory flat no matter how long
the run — the same back-pressure a production log-structured recovery
system applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.flow import FiveTuple
from repro.net.packet import Packet


@dataclass(slots=True)
class LogEntry:
    """One logged input packet, frozen at its pre-processing bytes."""

    seq: int
    key: FiveTuple  # canonical wire-ingress five-tuple
    packet: Packet  # a clone; never mutated after append


class PacketLog:
    """Append-only, trimmed-at-checkpoint input log for one replica."""

    def __init__(self, capacity: int = 4096, on_full: Optional[Callable[[], None]] = None):
        if capacity <= 0:
            raise ValueError(f"log capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        #: called just *before* an append that would overflow — the hook
        #: where the coordinator checkpoints and trims (pressure flush)
        self.on_full = on_full
        self._entries: List[LogEntry] = []
        self._next_seq = 1
        self.appended = 0
        self.trimmed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 when empty-forever)."""
        return self._next_seq - 1

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def append(self, packet: Packet) -> int:
        """Log one input packet (cloned); returns its sequence number."""
        if self.full and self.on_full is not None:
            self.on_full()
        if self.full:
            # The pressure hook failed to make room (or is absent):
            # drop the oldest entry rather than grow without bound.
            self._entries.pop(0)
        seq = self._next_seq
        self._next_seq += 1
        self._entries.append(
            LogEntry(seq=seq, key=packet.five_tuple().canonical(), packet=packet.clone())
        )
        self.appended += 1
        return seq

    def trim(self, upto_seq: int) -> int:
        """Discard entries with ``seq <= upto_seq``; returns the count."""
        kept = [entry for entry in self._entries if entry.seq > upto_seq]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        self.trimmed += dropped
        return dropped

    def entries(self) -> List[LogEntry]:
        return list(self._entries)

    def entries_after(self, seq: int) -> List[LogEntry]:
        """Entries newer than ``seq``, in arrival order."""
        return [entry for entry in self._entries if entry.seq > seq]

    def __repr__(self) -> str:
        return (
            f"<PacketLog {len(self._entries)}/{self.capacity} entries, "
            f"next seq {self._next_seq}>"
        )
