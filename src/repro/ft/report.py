"""The ``repro ft report`` page: a recovery run's artifacts → one view.

Folds the audit-event JSONL (and optionally a metrics snapshot) a
fault-tolerant run emitted into an operator's recovery post-mortem:

- **failure timeline** — every kill / buffer / restore / replay /
  failover-complete event in order, with its headline fields;
- **recovery table** — one row per failover: flows restored vs rebuilt,
  log packets replayed, buffered packets delivered, wall-clock cost;
- **checkpoint cadence** — rounds taken per cause (interval, pressure,
  post-recovery, migration) and flows captured;
- the standard audit + metrics summaries from ``repro obs report``.

Pure functions over loaded dicts, same contract as
:mod:`repro.obs.report` — the CLI does the file I/O.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.report import render_audit_summary, render_metrics_summary
from repro.stats.tables import format_table

#: the event kinds that tell the failure story, in the timeline section
TIMELINE_KINDS = (
    "ft_kill",
    "ft_freeze_absorbed",
    "ft_restore",
    "ft_replay",
    "ft_failover_complete",
)


def render_failure_timeline(events: Sequence[Dict[str, Any]], limit: int = 30) -> str:
    """The ordered story of every failure in the run."""
    story = [event for event in events if event.get("kind") in TIMELINE_KINDS]
    if not story:
        return "failure timeline\n(no fault-tolerance events recorded)"
    lines = [f"failure timeline ({len(story)} events)"]
    shown = story if len(story) <= limit else story[:limit]
    for event in shown:
        fields = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "ts", "kind")
        }
        rendered = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
        lines.append(f"  #{event.get('seq', '?')} {event['kind']} {rendered}".rstrip())
    if len(story) > limit:
        lines.append(f"  ... and {len(story) - limit} more")
    return "\n".join(lines)


def render_recovery_table(events: Sequence[Dict[str, Any]]) -> str:
    """One row per completed failover."""
    rows: List[List[Any]] = []
    for event in events:
        if event.get("kind") != "ft_failover_complete":
            continue
        rows.append(
            [
                event.get("replica", "?"),
                event.get("flows_restored", 0),
                event.get("flows_rebuilt", 0),
                event.get("replayed", 0),
                event.get("delivered", 0),
                event.get("duration_ms", 0.0),
            ]
        )
    if not rows:
        return "recoveries\n(no failover completed in this run)"
    return format_table(
        ["replica", "restored", "rebuilt", "replayed", "delivered", "ms"],
        rows,
        title=f"recoveries ({len(rows)})",
    )


def render_checkpoint_cadence(events: Sequence[Dict[str, Any]]) -> str:
    """Checkpoint rounds and captured flows, grouped by cause."""
    by_cause: Dict[str, List[int]] = {}
    for event in events:
        if event.get("kind") != "ft_checkpoint":
            continue
        by_cause.setdefault(str(event.get("cause", "?")), []).append(
            int(event.get("flows", 0))
        )
    if not by_cause:
        return "checkpoints\n(no checkpoints recorded)"
    rows = [
        [cause, len(flows), sum(flows)] for cause, flows in sorted(by_cause.items())
    ]
    total = sum(len(flows) for flows in by_cause.values())
    return format_table(
        ["cause", "rounds", "flows captured"],
        rows,
        title=f"checkpoints ({total} rounds)",
    )


def render_ft_report(
    audit: Sequence[Dict[str, Any]],
    metrics: Optional[Dict[str, float]] = None,
) -> str:
    """The full recovery post-mortem page."""
    blocks: List[str] = ["repro ft report\n==============="]
    blocks.append(render_failure_timeline(audit))
    blocks.append(render_recovery_table(audit))
    blocks.append(render_checkpoint_cadence(audit))
    blocks.append(render_audit_summary(audit))
    if metrics is not None:
        blocks.append(render_metrics_summary(metrics))
    return "\n\n".join(blocks)
