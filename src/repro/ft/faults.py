"""Deterministic fault injection: kill a replica at a chosen sim time.

The simulator's clock for control decisions is the global packet index —
every packet offered to the cluster advances it by one, in unloaded and
loaded mode alike.  :class:`FaultInjector` arms one kill on that clock:
when packet ``kill_at`` arrives, the coordinator removes the victim
replica *before* the packet is dispatched, so the kill lands mid-run
with traffic in flight exactly like a crash would.  ``recover_after``
arms the matching recovery ``N`` packets later, bounding how much
traffic buffers against the dead replica before failover; leave it
``None`` to drive :meth:`repro.ft.failover.FaultTolerance.recover`
manually (tests do, to assert on the intermediate buffered state).
"""

from __future__ import annotations

from typing import Optional


class FaultInjector:
    """One scheduled replica kill on the global packet-index clock."""

    def __init__(
        self,
        kill_at: Optional[int] = None,
        replica: Optional[int] = None,
        recover_after: Optional[int] = None,
    ):
        if kill_at is not None and kill_at < 0:
            raise ValueError(f"kill_at must be >= 0, got {kill_at!r}")
        if recover_after is not None and recover_after < 0:
            raise ValueError(f"recover_after must be >= 0, got {recover_after!r}")
        #: global packet index at which the kill fires (None = never)
        self.kill_at = kill_at
        #: the victim replica id (None = the replica homing the most flows)
        self.replica = replica
        #: packets after the kill before recovery fires (None = manual)
        self.recover_after = recover_after
        self.packet_index = 0
        self.killed = False
        self.kill_index: Optional[int] = None
        self.recovered = False

    def tick(self) -> Optional[str]:
        """Advance the packet clock; returns ``"kill"``/``"recover"`` when due.

        The action applies *before* the current packet is dispatched: a
        kill at index K means packet K already finds the replica dead.
        """
        index = self.packet_index
        self.packet_index += 1
        if self.kill_at is not None and not self.killed and index >= self.kill_at:
            self.killed = True
            self.kill_index = index
            return "kill"
        if (
            self.killed
            and not self.recovered
            and self.recover_after is not None
            and self.kill_index is not None
            and index >= self.kill_index + self.recover_after
        ):
            self.recovered = True
            return "recover"
        return None

    def __repr__(self) -> str:
        state = "armed" if not self.killed else ("killed" if not self.recovered else "done")
        return (
            f"<FaultInjector kill_at={self.kill_at} replica={self.replica} "
            f"recover_after={self.recover_after} [{state}] t={self.packet_index}>"
        )
