"""§VII-C equivalence methodology, extended across a replica failure.

:func:`verify_equivalence_failover` runs the same packet stream through
a single reference SpeedyBox runtime and through a
:class:`~repro.scale.cluster.ScaleCluster` with fault tolerance armed to
kill one replica mid-stream — then checks the three recovery-correctness
properties:

- **loss-free**: every offered packet produced exactly one live outcome
  — processed normally, or buffered against the dead replica and
  delivered by failover (migration freezes included);
- **duplicate-free**: live outcomes sum to exactly the stream length —
  recovery *replays* are state reconstruction, never extra deliveries;
- **state-identical**: every live flow's per-NF state on whichever
  replica now homes it matches the uninterrupted reference run, and
  forwarded wire bytes match per packet index.

Unlike :func:`~repro.core.verification.verify_equivalence_migration`,
fast/slow-path and event counter totals are deliberately **not**
compared: log replay re-runs packets through the pipeline, inflating
those counters on the cluster side by design.  (The audit log's
``ft_replay`` events carry the exact inflation for anyone attributing
counter deltas.)

When the chain holds a NAT, the cluster's replicas must draw ports from
one :class:`~repro.ft.txstate.SharedPortPool` (pass a dedicated
``cluster_chain_factory``) — the reference keeps its private sequential
allocator, which assigns the same ports in the same global arrival
order, so wire bytes still compare exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.framework import SpeedyBox
from repro.core.verification import Divergence, VerificationReport
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.scale.cluster import ScaleCluster
from repro.scale.migration import chain_state_snapshot
from repro.ft.failover import FaultTolerance, RecoveryReport
from repro.ft.faults import FaultInjector

ChainFactory = Callable[[], Sequence[NetworkFunction]]


@dataclass
class FailoverVerificationReport(VerificationReport):
    """Outcome of the failover variant of the equivalence methodology."""

    killed_replica: Optional[int] = None
    buffered_packets: int = 0  # held against the dead replica
    delivered_packets: int = 0  # buffered packets delivered by recovery
    replayed_packets: int = 0  # log entries re-run (state rebuild only)
    flows_restored: int = 0
    flows_rebuilt: int = 0
    charged_packets: int = 0  # deliveries whose latency carries the stall
    stall_charged_ns: float = 0.0  # failover stall charged onto them, total
    recoveries: List[RecoveryReport] = field(default_factory=list, repr=False)

    @property
    def recovery_ms(self) -> float:
        return sum(r.duration_s for r in self.recoveries) * 1000.0

    def summary(self) -> str:
        lines = [super().summary()]
        lines.append(
            f"failover of replica {self.killed_replica}: "
            f"{self.buffered_packets} buffered / {self.delivered_packets} delivered, "
            f"{self.flows_restored} flows restored + {self.flows_rebuilt} rebuilt, "
            f"{self.replayed_packets} log packets replayed, "
            f"{self.recovery_ms:.2f} ms recovery"
        )
        if self.charged_packets:
            lines.append(
                f"stall charged: {self.stall_charged_ns / 1e6:.2f} ms over "
                f"{self.charged_packets} buffered deliveries"
            )
        return "\n".join(lines)


def verify_equivalence_failover(
    chain_factory: ChainFactory,
    packets: Sequence[Packet],
    kill_at: int,
    cluster_chain_factory: Optional[ChainFactory] = None,
    replicas: int = 4,
    checkpoint_interval: int = 16,
    recover_after: Optional[int] = None,
    kill_replica: Optional[int] = None,
    churn: int = 0,
    churn_at: Optional[int] = None,
    speedybox_kwargs: Optional[dict] = None,
    platform: str = "bess",
    charge_recovery: bool = True,
) -> FailoverVerificationReport:
    """Kill a replica mid-stream; prove recovery was invisible.

    ``chain_factory`` builds the reference chain; ``cluster_chain_factory``
    (defaulting to the same) builds each replica's — pass a distinct one
    when replicas must share transactional state (NAT port pool).
    ``recover_after`` arms auto-recovery that many packets after the
    kill; ``None`` recovers whatever is still dead at end of stream.
    ``churn`` flows are forcibly re-homed just before packet
    ``churn_at`` (default: halfway to the kill), putting migrated state
    and migration pins in the blast radius.

    The byte-identity claim covers flows established before the kill.
    A flow whose *first* packet arrives during the outage is still
    served loss-free, but any order-sensitive shared allocation it
    triggers (a NAT port draw) happens at recovery-delivery time, after
    peers' later arrivals — so its external port may permute relative
    to the never-failed reference.  That is the counterfactual changing,
    not state being lost.
    """
    if not 0 <= kill_at < len(packets):
        raise ValueError(f"kill_at must index into the packet stream, got {kill_at!r}")
    reference = SpeedyBox(chain_factory(), **(speedybox_kwargs or {}))
    cluster = ScaleCluster(
        cluster_chain_factory or chain_factory,
        platform=platform,
        replicas=replicas,
        speedybox=True,
        speedybox_kwargs=speedybox_kwargs,
    )
    ft = FaultTolerance(
        cluster,
        checkpoint_interval=checkpoint_interval,
        injector=FaultInjector(
            kill_at=kill_at, replica=kill_replica, recover_after=recover_after
        ),
        charge_recovery=charge_recovery,
    )

    ref_stream = [packet.clone() for packet in packets]
    cluster_stream = [packet.clone() for packet in packets]
    for packet in ref_stream:
        reference.process(packet)

    report = FailoverVerificationReport(packets=len(packets))
    if churn and churn_at is None:
        churn_at = kill_at // 2
    live_outcomes = 0
    for index, packet in enumerate(cluster_stream):
        if churn and index == churn_at:
            cluster.churn_flows(churn, seed=7)
        outcome = cluster.process(packet)
        if outcome is not None:
            live_outcomes += 1
    report.killed_replica = ft.injector.replica
    report.buffered_packets = ft.packets_buffered
    if ft.dead:
        ft.recover_all()
    report.recoveries = list(ft.recoveries)
    report.delivered_packets = sum(r.packets_delivered for r in ft.recoveries)
    report.replayed_packets = sum(r.packets_replayed for r in ft.recoveries)
    report.flows_restored = sum(r.flows_restored for r in ft.recoveries)
    report.flows_rebuilt = sum(r.flows_rebuilt for r in ft.recoveries)
    report.charged_packets = sum(r.packets_charged for r in ft.recoveries)
    report.stall_charged_ns = sum(r.stall_charged_ns for r in ft.recoveries)

    # Loss- and duplicate-freedom in one equation: every packet got
    # exactly one live outcome, either in-stream or via recovery delivery.
    if live_outcomes + report.delivered_packets != len(packets):
        report.divergences.append(
            Divergence(
                -1,
                "loss",
                f"{live_outcomes} in-stream + {report.delivered_packets} "
                f"delivered != {len(packets)} offered",
            )
        )

    for index, (ref_pkt, cl_pkt) in enumerate(zip(ref_stream, cluster_stream)):
        if ref_pkt.dropped != cl_pkt.dropped:
            report.divergences.append(
                Divergence(
                    index,
                    "drop",
                    f"reference={'dropped' if ref_pkt.dropped else 'forwarded'}, "
                    f"cluster={'dropped' if cl_pkt.dropped else 'forwarded'}",
                )
            )
        elif not ref_pkt.dropped and ref_pkt.serialize() != cl_pkt.serialize():
            report.divergences.append(
                Divergence(index, "bytes", f"{ref_pkt!r} vs {cl_pkt!r}")
            )

    # Per-flow NF state: the reference chain vs whichever replica now
    # homes each flow (failover re-homed the dead replica's flows).
    for key, home in sorted(cluster.flow_homes().items()):
        ref_state = chain_state_snapshot(reference.nfs, key)
        cluster_state = chain_state_snapshot(cluster.replica(home).runtime.nfs, key)
        if ref_state != cluster_state:
            report.divergences.append(
                Divergence(
                    -1,
                    "state",
                    f"flow {key} on replica {home}: "
                    f"reference={ref_state!r} vs cluster={cluster_state!r}",
                )
            )

    runtimes = [cluster.replica(rid).runtime for rid in sorted(cluster.replicas)]
    report.fast_packets = sum(runtime.fast_packets for runtime in runtimes)
    report.slow_packets = sum(runtime.slow_packets for runtime in runtimes)
    report.events_triggered = sum(
        runtime.event_table.total_triggered for runtime in runtimes
    )
    return report
