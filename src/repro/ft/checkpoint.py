"""Per-flow state snapshots: capture without detaching, restore anywhere.

A checkpoint is everything :class:`~repro.scale.migration.FlowMigrator`
would move for one flow — classifier connection entry, Local MAT rules,
the consolidated Global MAT rule, registered events, and each NF's
per-flow state — but *copied*, not moved: the flow keeps running on its
replica after capture.

Capture reuses the migration machinery wholesale.  The flow's state is
exported exactly as a migration would (same wire-direction walk, same
FID-collision tolerance), deep-copied, and immediately imported back
into the same runtime — an identity round-trip.  The deep copy is
seeded with an identity-preserving memo (``id(nf) -> nf`` for every
chain NF), so recorded handlers in the *stored* copy remain bound
methods of the source replica's NF objects, exactly like a freshly
exported migration record.  Restoring onto a peer is then literally the
migration import path: deep-copy the stored record (the checkpoint
stays pristine for a second failure),
:func:`~repro.scale.migration.rebind_record` from the dead replica's
NFs to the target's, and import.

The round-trip invalidates the flow's compiled fast lane
(``checkpoint_capture`` in the audit log); its next packet recompiles,
observably identical under the compiled/interpreted parity contract.

:class:`CheckpointManager` holds the latest snapshot per flow across a
:class:`~repro.scale.cluster.ScaleCluster`, each stamped with the
replica's input-log position (:mod:`repro.ft.pktlog`) at capture —
recovery restores the snapshot and replays only log entries past it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import FlowRecord, ServiceChain, SpeedyBox
from repro.net.flow import FiveTuple
from repro.nf.base import NetworkFunction
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.scale.migration import (
    export_direction,
    observed_tuples,
    rebind_record,
    wire_directions,
)

Runtime = Union[ServiceChain, SpeedyBox]

#: (nf name, observed five-tuple, opaque NF state)
NFStateItem = Tuple[str, FiveTuple, object]


@dataclass
class FlowCheckpoint:
    """One flow's snapshot, detached from any replica's lifetime."""

    flow: FiveTuple  # canonical primary key
    replica_id: int  # home replica at capture time
    log_seq: int  # the replica input-log position at capture
    directions: Tuple[FiveTuple, ...] = ()
    #: SpeedyBox table copies, one per live direction; handlers still
    #: bound to the *source* replica's NF objects
    records: List[FlowRecord] = field(default_factory=list)
    nf_states: List[NFStateItem] = field(default_factory=list)

    def covers(self, key: FiveTuple) -> bool:
        return any(direction.canonical() == key for direction in self.directions)

    def item_count(self) -> int:
        return len(self.records) + len(self.nf_states)


def _identity_memo(nfs: Sequence[NetworkFunction]) -> Dict[int, object]:
    """A deepcopy memo that keeps every chain NF shared, not copied."""
    return {id(nf): nf for nf in nfs}


def capture_flow(
    runtime: Runtime,
    flow: FiveTuple,
    replica_id: int = 0,
    log_seq: int = 0,
) -> Optional[FlowCheckpoint]:
    """Snapshot one flow without disturbing it (export → copy → import).

    Returns ``None`` when the runtime holds nothing for the flow.  The
    runtime is left exactly as found: the same objects are re-imported,
    so even object identities (shared StateFunction batches, classifier
    entries) survive the round-trip.
    """
    key = flow.canonical()
    nfs = list(runtime.nfs)
    directions = tuple(wire_directions(nfs, key))
    observed = {direction: observed_tuples(nfs, direction) for direction in directions}

    records: List[FlowRecord] = []
    if isinstance(runtime, SpeedyBox):
        for direction in directions:
            record = export_direction(runtime, direction, reason="checkpoint_capture")
            if record is not None:
                records.append(record)
    nf_states: List[NFStateItem] = []
    for direction in directions:
        for nf, observed_key in zip(nfs, observed[direction]):
            state = nf.export_flow_state(observed_key)
            if state is not None:
                nf_states.append((nf.name, observed_key, state))

    if not records and not nf_states:
        return None

    stored_records, stored_states = copy.deepcopy(
        (records, nf_states), _identity_memo(nfs)
    )

    # Identity round-trip: the originals go straight back where they were.
    if isinstance(runtime, SpeedyBox):
        for record in records:
            runtime.import_flow(record, reason="checkpoint_capture")
    nf_by_name = {nf.name: nf for nf in nfs}
    for name, observed_key, state in nf_states:
        nf_by_name[name].import_flow_state(observed_key, state)

    return FlowCheckpoint(
        flow=key,
        replica_id=replica_id,
        log_seq=log_seq,
        directions=directions,
        records=stored_records,
        nf_states=stored_states,
    )


def restore_flow(
    checkpoint: FlowCheckpoint,
    runtime: Runtime,
    src_nfs: Sequence[NetworkFunction],
) -> int:
    """Install a checkpoint into ``runtime``; returns handlers rebound.

    ``src_nfs`` are the NFs the stored handlers are bound to — the dead
    replica's chain, kept alive in the coordinator's graveyard precisely
    so this rebind has its source objects.  The checkpoint itself is
    deep-copied first and stays reusable (a second failure on the new
    home can restore from it again until a fresher snapshot replaces it).
    """
    records, nf_states = copy.deepcopy(
        (checkpoint.records, checkpoint.nf_states), _identity_memo(src_nfs)
    )
    rebound = 0
    if isinstance(runtime, SpeedyBox):
        for record in records:
            rebound += rebind_record(record, src_nfs, runtime.nfs)
            runtime.import_flow(record, reason="checkpoint_restore")
    nf_by_name = {nf.name: nf for nf in runtime.nfs}
    for name, observed_key, state in nf_states:
        nf_by_name[name].import_flow_state(observed_key, state)
    return rebound


class CheckpointManager:
    """Latest-snapshot-per-flow index across a cluster's replicas."""

    def __init__(
        self,
        cluster,
        audit: AuditLog = NULL_AUDIT,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ):
        self.cluster = cluster
        self.audit = audit
        #: primary canonical key -> latest checkpoint
        self._snapshots: Dict[FiveTuple, FlowCheckpoint] = {}
        #: any direction's canonical key -> primary key
        self._by_direction: Dict[FiveTuple, FiveTuple] = {}
        self.checkpoints_taken = 0
        self.flows_captured = 0
        self._m_checkpoints = metrics.counter(
            "ft_checkpoints_total", "replica-wide checkpoint rounds taken"
        )
        self._m_flows = metrics.counter(
            "ft_flows_captured_total", "per-flow snapshots captured"
        )

    # -- capture -------------------------------------------------------------

    def snapshot_replica(self, replica_id: int, log_seq: int, cause: str = "interval") -> int:
        """Capture every flow homed on the replica; returns flows captured."""
        runtime = self.cluster.replicas[replica_id].runtime
        seen: set = set()
        captured = 0
        for key, home in sorted(self.cluster.flow_homes().items()):
            if home != replica_id or key in seen:
                continue
            checkpoint = capture_flow(
                runtime, key, replica_id=replica_id, log_seq=log_seq
            )
            if checkpoint is None:
                # The flow's state is gone (closed since last round): a
                # stale snapshot must not resurrect it at recovery.
                self.drop_flow(key)
                seen.add(key)
                continue
            for direction in checkpoint.directions:
                seen.add(direction.canonical())
            self.store(checkpoint)
            captured += 1
        self.checkpoints_taken += 1
        self._m_checkpoints.inc()
        self._m_flows.inc(captured)
        self.audit.emit(
            "ft_checkpoint",
            replica=replica_id,
            flows=captured,
            log_seq=log_seq,
            cause=cause,
        )
        return captured

    def snapshot_flow(
        self, replica_id: int, flow: FiveTuple, log_seq: int, cause: str = "single"
    ) -> Optional[FlowCheckpoint]:
        """Capture one flow (e.g. right after it migrates onto a replica)."""
        runtime = self.cluster.replicas[replica_id].runtime
        checkpoint = capture_flow(runtime, flow, replica_id=replica_id, log_seq=log_seq)
        if checkpoint is not None:
            self.store(checkpoint)
            self._m_flows.inc()
            self.audit.emit(
                "ft_checkpoint",
                replica=replica_id,
                flows=1,
                flow=str(checkpoint.flow),
                log_seq=log_seq,
                cause=cause,
            )
        return checkpoint

    def store(self, checkpoint: FlowCheckpoint) -> None:
        self.drop_flow(checkpoint.flow)
        self._snapshots[checkpoint.flow] = checkpoint
        for direction in checkpoint.directions:
            self._by_direction[direction.canonical()] = checkpoint.flow

    # -- lookup / lifecycle --------------------------------------------------

    def snapshot_for(self, key: FiveTuple) -> Optional[FlowCheckpoint]:
        """The checkpoint covering this wire direction, if any."""
        primary = self._by_direction.get(key.canonical())
        if primary is None:
            return None
        return self._snapshots.get(primary)

    def drop_flow(self, key: FiveTuple) -> Optional[FlowCheckpoint]:
        """Forget the checkpoint covering ``key`` (migrated / closed)."""
        primary = self._by_direction.get(key.canonical(), key.canonical())
        checkpoint = self._snapshots.pop(primary, None)
        if checkpoint is not None:
            for direction in checkpoint.directions:
                self._by_direction.pop(direction.canonical(), None)
        return checkpoint

    def snapshots_for_replica(self, replica_id: int) -> List[FlowCheckpoint]:
        return [
            checkpoint
            for checkpoint in self._snapshots.values()
            if checkpoint.replica_id == replica_id
        ]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __repr__(self) -> str:
        return (
            f"<CheckpointManager {len(self._snapshots)} flows, "
            f"{self.checkpoints_taken} rounds>"
        )
