"""The failover coordinator: checkpoint cadence, kill handling, recovery.

:class:`FaultTolerance` attaches to a
:class:`~repro.scale.cluster.ScaleCluster` (``cluster.ft``) and receives
three hooks on the cluster's dispatch path:

- :meth:`tick` — advances the :class:`~repro.ft.faults.FaultInjector`
  before each packet, so an armed kill lands with traffic in flight;
- :meth:`is_dead` / :meth:`buffer_packet` — packets addressed to a dead
  replica's flows are buffered, never dropped, and delivered in arrival
  order when recovery completes;
- :meth:`note_dispatch` — logs a pre-processing clone of every packet a
  replica receives (:class:`~repro.ft.pktlog.PacketLog`) and drives the
  checkpoint cadence: every ``checkpoint_interval`` packets per replica,
  snapshot all of its flows and trim its log.

Recovery (:meth:`recover`) follows Khalid & Akella's correctness bar —
loss-free, duplicate-free, state-identical — with the classic
snapshot+log protocol mapped onto the existing migration machinery:

1. the dead replica leaves the sharder (its buckets rebalance onto
   peers, its pins drop) — the same indirection-table move a planned
   scale-in makes;
2. each orphaned flow's latest checkpoint is restored onto the replica
   the sharder now names, handlers rebound from the dead replica's NF
   objects (kept alive in a graveyard precisely for this) to the
   target's;
3. the dead replica's input log replays *through the normal pipeline* —
   only entries past each flow's checkpoint position; flows born after
   the last checkpoint have their whole history in the log and are
   rebuilt from scratch;
4. buffered in-flight packets are delivered in arrival order — these
   are live deliveries, not replays;
5. the recovered flows are immediately re-checkpointed on their new
   homes, so a second failure replays from *now*, not from the dead
   replica's era.

Replay re-runs packets whose effects partially happened (shared-state
updates committed before the crash): per-flow state is rebuilt from
zero so re-running is exact, and genuinely shared state (NAT port pool,
monitor aggregates) lives in the :class:`~repro.ft.txstate.TransactionalStore`,
whose idempotent transactions make the replayed updates commit exactly
once.

A replica that dies while one of its flows is frozen mid-migration has
that flow's freeze buffer *absorbed* into the dead-replica buffer at
kill time (and the migration cancelled), so the buffer is delivered
exactly once by recovery — never double-delivered by a later
``complete_migration``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.obs.audit import AuditLog
from repro.obs.forensics import StallCharge, emit_recovery_regime_shift
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, PacketTracer
from repro.platform.base import LoadResult
from repro.scale.cluster import ChainReplica, ScaleCluster
from repro.ft.checkpoint import CheckpointManager, restore_flow
from repro.ft.faults import FaultInjector
from repro.ft.pktlog import PacketLog
from repro.ft.txstate import TransactionalStore


class FailoverError(RuntimeError):
    """The cluster cannot recover from this failure."""


@dataclass
class DeadReplica:
    """A killed replica's remains: graveyard object + in-flight buffer."""

    replica: ChainReplica
    killed_at_index: int
    buffered: List[Packet] = field(default_factory=list)
    #: simulated arrival stamp of each buffered packet (parallel to
    #: ``buffered``); ``None`` for packets without an arrival clock
    #: (unloaded dispatch, absorbed freeze buffers)
    arrivals: List[Optional[float]] = field(default_factory=list)
    frozen_absorbed: int = 0
    #: recovery-timeline clock: when the kill landed (tracer ns)
    killed_ns: float = 0.0


@dataclass
class RecoveryReport:
    """What one failover did, and how long it took."""

    replica: int
    flows_restored: int = 0  # from checkpoints
    flows_rebuilt: int = 0  # from log replay alone (born after last snapshot)
    handlers_rebound: int = 0
    packets_replayed: int = 0  # log entries re-run through the pipeline
    packets_delivered: int = 0  # buffered in-flight packets delivered live
    packets_charged: int = 0  # deliveries charged with recovery stall
    stall_charged_ns: float = 0.0  # total recovery stall charged to them
    duration_s: float = 0.0
    outcomes: List[object] = field(default_factory=list, repr=False)


class FaultTolerance:
    """Checkpointed, replay-based failover for a :class:`ScaleCluster`."""

    def __init__(
        self,
        cluster: ScaleCluster,
        checkpoint_interval: int = 32,
        log_capacity: int = 4096,
        injector: Optional[FaultInjector] = None,
        store: Optional[TransactionalStore] = None,
        audit: Optional[AuditLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: PacketTracer = NULL_TRACER,
        charge_recovery: bool = True,
        forensics=None,
    ):
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval!r}"
            )
        self.cluster = cluster
        self.checkpoint_interval = checkpoint_interval
        self.log_capacity = log_capacity
        self.injector = injector or FaultInjector()
        self.audit = audit if audit is not None else cluster.audit
        metrics = metrics if metrics is not None else cluster.metrics
        #: the cluster-shared transactional store (NAT port pool, monitor
        #: aggregates); survives every replica by construction
        self.store = store or TransactionalStore(audit=self.audit)
        self.checkpoints = CheckpointManager(cluster, audit=self.audit, metrics=metrics)
        self.logs: Dict[int, PacketLog] = {}
        self._since_checkpoint: Dict[int, int] = {}
        self.dead: Dict[int, DeadReplica] = {}
        self.recoveries: List[RecoveryReport] = []
        self.packets_buffered = 0
        self._in_recovery = False
        #: charge recovery wall-time (detect → drain) onto the simulated
        #: timeline of every buffered delivery (ROADMAP item-3 follow-on).
        #: ``False`` restores the pre-charging behavior: recovery stays a
        #: wall-clock side channel and delivered packets carry no stall.
        self.charge_recovery = charge_recovery
        #: optional :class:`repro.obs.forensics.ForensicsEngine` fed one
        #: :class:`~repro.obs.forensics.StallCharge` per charged delivery
        self.forensics = forensics
        #: every charged delivery across all recoveries, in drain order
        self.charged: List["StallCharge"] = []
        self._m_kills = metrics.counter("ft_kills_total", "replicas killed")
        self._m_recoveries = metrics.counter("ft_recoveries_total", "failovers completed")
        self._m_buffered = metrics.counter(
            "ft_buffered_packets_total", "packets buffered against dead replicas"
        )
        self._m_replayed = metrics.counter(
            "ft_replayed_packets_total", "log entries replayed during recovery"
        )
        #: recovery-timeline spans land on track ``ft:r<id>`` and stitch
        #: into the same Chrome-trace export the packet spans use
        self.tracer = tracer
        self._trace_origin = time.perf_counter()
        self._m_restore_ns = metrics.counter(
            "ft_restore_ns_total", "wall time spent restoring checkpoints"
        )
        self._m_replay_ns = metrics.counter(
            "ft_replay_ns_total", "wall time spent replaying input logs"
        )
        self._m_drain_ns = metrics.counter(
            "ft_drain_ns_total", "wall time spent draining buffered in-flight packets"
        )
        self._m_health_checkpoints = metrics.counter(
            "ft_health_checkpoints_total",
            "proactive checkpoints triggered by cluster-health transitions",
        )
        cluster.ft = self

    def _now_ns(self) -> float:
        return (time.perf_counter() - self._trace_origin) * 1e9

    # -- cluster hooks (called from ScaleCluster's dispatch path) -----------

    def tick(self, packet: Packet) -> None:
        """Advance the fault clock; execute an armed kill/recovery."""
        if self._in_recovery:
            return
        action = self.injector.tick()
        if action == "kill":
            self.injector.replica = self.kill(self.injector.replica, reason="injected")
        elif action == "recover":
            self.recover_all()

    def is_dead(self, replica_id: int) -> bool:
        return replica_id in self.dead

    def buffer_packet(
        self, replica_id: int, packet: Packet, arrival_ns: Optional[float] = None
    ) -> None:
        """Hold an in-flight packet addressed to a dead replica's flow.

        ``arrival_ns`` is the packet's simulated arrival stamp (loaded
        runs pass it); recovery charges the stall from that arrival to
        the packet's delivery when ``charge_recovery`` is on.
        """
        dead = self.dead[replica_id]
        dead.buffered.append(packet)
        dead.arrivals.append(arrival_ns)
        self.packets_buffered += 1
        self._m_buffered.inc()
        self.audit.emit(
            "ft_buffer",
            replica=replica_id,
            flow=str(packet.five_tuple().canonical()),
            buffered=len(dead.buffered),
        )

    def note_dispatch(self, packet: Packet, key, replica_id: int) -> None:
        """Log the packet pre-processing; run the checkpoint cadence."""
        if self._in_recovery:
            return
        if self._since_checkpoint.get(replica_id, 0) >= self.checkpoint_interval:
            self.checkpoint_replica(replica_id, cause="interval")
        log = self._log_for(replica_id)
        log.append(packet)
        self._since_checkpoint[replica_id] = (
            self._since_checkpoint.get(replica_id, 0) + 1
        )

    def on_flow_migrated(self, key, src_rid: int, dst_rid: int) -> None:
        """A flow's state moved src→dst: its old snapshot is now wrong.

        Re-snapshot it on the destination immediately (stamped with the
        destination log's current position), so a destination failure
        between now and the next cadence checkpoint still recovers it —
        the migration's freeze-buffer replays bypassed the input log, so
        without this snapshot those packets would be unrecoverable.
        """
        if self._in_recovery:
            return
        self.checkpoints.drop_flow(key)
        if dst_rid in self.cluster.replicas:
            log = self._log_for(dst_rid)
            self.checkpoints.snapshot_flow(
                dst_rid, key, log_seq=log.last_seq, cause="migrated_in"
            )

    def on_health(self, report) -> None:
        """Cluster-health listener: snapshot a struggling replica early.

        Subscribed via ``HealthModel.add_listener(ft.on_health)``.  A
        replica whose windows turn degraded or critical is statistically
        closer to a kill than its peers, so take a checkpoint *now*
        while its state is still reachable — recovery then replays from
        the onset of trouble instead of the last cadence snapshot.
        """
        if self._in_recovery:
            return
        from repro.obs.health import HEALTHY

        rid = report.replica
        if report.state == HEALTHY or rid not in self.cluster.replicas:
            return
        self._m_health_checkpoints.inc()
        self.checkpoint_replica(rid, cause=f"health_{report.state}")

    # -- checkpoint cadence --------------------------------------------------

    def _log_for(self, replica_id: int) -> PacketLog:
        log = self.logs.get(replica_id)
        if log is None:
            log = self.logs[replica_id] = PacketLog(
                capacity=self.log_capacity,
                on_full=lambda rid=replica_id: self.checkpoint_replica(
                    rid, cause="log_full"
                ),
            )
        return log

    def checkpoint_replica(self, replica_id: int, cause: str = "manual") -> int:
        """Snapshot every flow on the replica and trim its input log."""
        log = self._log_for(replica_id)
        captured = self.checkpoints.snapshot_replica(
            replica_id, log_seq=log.last_seq, cause=cause
        )
        log.trim(log.last_seq)
        self._since_checkpoint[replica_id] = 0
        return captured

    def checkpoint_all(self, cause: str = "manual") -> int:
        return sum(
            self.checkpoint_replica(rid, cause=cause)
            for rid in sorted(self.cluster.replicas)
        )

    # -- kill ----------------------------------------------------------------

    def _pick_victim(self) -> int:
        """Default victim: the alive replica homing the most flows."""
        homes = self.cluster.flow_homes()
        loads = {rid: 0 for rid in self.cluster.replicas}
        for home in homes.values():
            if home in loads:
                loads[home] += 1
        return max(sorted(loads), key=lambda rid: loads[rid])

    def kill(self, replica_id: Optional[int] = None, reason: str = "manual") -> int:
        """Remove a replica abruptly; its flows' packets buffer until recovery."""
        cluster = self.cluster
        if len(cluster.replicas) <= 1:
            raise FailoverError("cannot kill the last alive replica")
        if replica_id is None:
            replica_id = self._pick_victim()
        if replica_id not in cluster.replicas:
            raise FailoverError(f"unknown or already-dead replica {replica_id!r}")
        replica = cluster.replicas.pop(replica_id)
        dead = DeadReplica(
            replica=replica,
            killed_at_index=self.injector.packet_index,
            killed_ns=self._now_ns(),
        )
        self.tracer.instant(
            "detect", f"ft:r{replica_id}", dead.killed_ns, reason=reason
        )
        # Crash-during-migration guard: absorb the freeze buffers of any
        # flow homed here that is frozen mid-migration.  The migration is
        # cancelled (complete_migration will raise) and the buffered
        # packets join the dead-replica buffer — they arrived before the
        # kill, so they sit at its head and recovery delivers them
        # exactly once, in order.
        for key in list(cluster._freeze_groups):
            if cluster.home_of(key) != replica_id:
                continue
            group = cluster._freeze_groups.pop(key)
            buffer = cluster._frozen.get(key, [])
            for member in group:
                cluster._frozen.pop(member, None)
            dead.buffered.extend(buffer)
            dead.arrivals.extend([None] * len(buffer))
            dead.frozen_absorbed += len(buffer)
            self.audit.emit(
                "ft_freeze_absorbed",
                replica=replica_id,
                flow=str(key),
                packets=len(buffer),
            )
        self.dead[replica_id] = dead
        self._m_kills.inc()
        cluster._m_replicas.set(len(cluster.replicas))
        flows_orphaned = sum(
            1 for home in cluster.flow_homes().values() if home == replica_id
        )
        self.audit.emit(
            "ft_kill",
            replica=replica_id,
            reason=reason,
            at_index=dead.killed_at_index,
            flows_orphaned=flows_orphaned,
            frozen_absorbed=dead.frozen_absorbed,
        )
        return replica_id

    # -- recovery ------------------------------------------------------------

    def _alive_home(self, key) -> int:
        """The alive replica ``key`` routes to — pinned off a dead peer.

        Under concurrent failures the sharder may still name a replica
        that is itself dead (it only leaves the table when *its* recovery
        runs).  Restoring or replaying onto it would strand the flow, so
        pin onto the least-loaded alive peer instead — the same
        indirection-table move the sharder makes once that replica is
        removed.
        """
        cluster = self.cluster
        target = cluster.sharder.replica_for(key)
        if target in cluster.replicas:
            return target
        loads = {rid: 0 for rid in cluster.replicas}
        for home in cluster.flow_homes().values():
            if home in loads:
                loads[home] += 1
        target = min(sorted(loads), key=lambda rid: loads[rid])
        cluster.sharder.pin(key, target)
        return target

    def recover(self, replica_id: int) -> RecoveryReport:
        """Fail the dead replica's flows over onto its peers."""
        dead = self.dead.pop(replica_id, None)
        if dead is None:
            raise FailoverError(f"replica {replica_id!r} is not dead")
        cluster = self.cluster
        if not cluster.replicas:
            self.dead[replica_id] = dead
            raise FailoverError("no alive replicas to fail over onto")
        started = time.perf_counter()
        report = RecoveryReport(replica=replica_id)
        self._in_recovery = True
        tracer = self.tracer
        track = f"ft:r{replica_id}"
        stage_start = self._now_ns()
        # The buffer stage spans the dead era itself: detect → recovery
        # start, everything that arrived meanwhile held in order.
        tracer.span(
            "buffer",
            track,
            dead.killed_ns,
            stage_start - dead.killed_ns,
            packets=len(dead.buffered),
            frozen_absorbed=dead.frozen_absorbed,
        )
        try:
            src_nfs = list(dead.replica.runtime.nfs)

            # 1. The dead replica leaves the indirection table: its
            # buckets rebalance onto the peers, its pins drop.
            cluster.sharder.remove_replica(replica_id)

            # 2. Orphaned flows: everything homed on the dead replica.
            orphan_keys = sorted(
                key
                for key, home in cluster.flow_homes().items()
                if home == replica_id
            )
            for key in orphan_keys:
                del cluster._flow_homes[key]
            orphan_set = set(orphan_keys)

            # Flows the dead replica's classifier no longer tracked had
            # finished (FIN teardown) before the kill: their state was
            # already gone and their shared-state effects (NAT port
            # release) already committed.  Restoring or replaying one
            # would resurrect a completed flow — and its NAT setup,
            # whose idempotency record died with the flow, would draw a
            # *different* port from the freed list, permuting the
            # allocation the reference run made.  ``None`` (no
            # classifier on the dead runtime) disables the guard.
            classifier = getattr(dead.replica.runtime, "classifier", None)
            live_keys = None
            if classifier is not None:
                live_keys = {
                    entry.five_tuple.canonical()
                    for entry in classifier._flows.values()
                    if not entry.closed
                }

            # 3. Restore checkpoints onto the replicas the sharder now
            # names; pin every wire direction to the same target, exactly
            # as live egress tracking would have.
            restored: Dict = {}
            snapshot_covered: set = set()
            for key in orphan_keys:
                checkpoint = self.checkpoints.snapshot_for(key)
                if checkpoint is None or checkpoint.flow in restored:
                    continue
                if live_keys is not None and not live_keys.intersection(
                    direction.canonical() for direction in checkpoint.directions
                ):
                    # Closed since its last snapshot: a stale checkpoint
                    # must not resurrect it (same rule the cadence
                    # applies when a capture comes back empty).
                    self.checkpoints.drop_flow(checkpoint.flow)
                    continue
                target = self._alive_home(checkpoint.flow)
                rebound = restore_flow(
                    checkpoint, cluster.replicas[target].runtime, src_nfs
                )
                for direction in checkpoint.directions:
                    direction_key = direction.canonical()
                    snapshot_covered.add(direction_key)
                    cluster._flow_homes[direction_key] = target
                    if cluster.sharder.replica_for(direction_key) != target:
                        cluster.sharder.pin(direction_key, target)
                restored[checkpoint.flow] = (checkpoint, target)
                report.flows_restored += 1
                report.handlers_rebound += rebound
                self.audit.emit(
                    "ft_restore",
                    flow=str(checkpoint.flow),
                    src=replica_id,
                    dst=target,
                    log_seq=checkpoint.log_seq,
                    items=checkpoint.item_count(),
                )

            now = self._now_ns()
            tracer.span(
                "restore",
                track,
                stage_start,
                now - stage_start,
                flows=report.flows_restored,
                handlers=report.handlers_rebound,
            )
            self._m_restore_ns.inc(now - stage_start)
            stage_start = now

            # 4. Replay the input log through the normal pipeline —
            # snapshot-covered flows from their checkpoint position,
            # snapshot-less flows (born since the last checkpoint) from
            # their first logged packet.
            log = self._log_for(replica_id)
            rebuilt_flows: set = set()
            for entry in log.entries():
                if entry.key not in orphan_set:
                    continue  # migrated away before the kill: lives elsewhere
                if live_keys is not None and entry.key not in live_keys:
                    continue  # flow finished before the kill: nothing to rebuild
                checkpoint = self.checkpoints.snapshot_for(entry.key)
                if checkpoint is not None and entry.seq <= checkpoint.log_seq:
                    continue  # effect already inside the snapshot
                if entry.key not in snapshot_covered:
                    rebuilt_flows.add(entry.key)
                # A replayed clone must never land in a concurrently-dead
                # peer's buffer (it would be delivered live later — a dup).
                self._alive_home(entry.key)
                cluster.process(entry.packet.clone())
                report.packets_replayed += 1
            report.flows_rebuilt = len(rebuilt_flows)
            self._m_replayed.inc(report.packets_replayed)
            del self.logs[replica_id]
            self._since_checkpoint.pop(replica_id, None)
            self.audit.emit(
                "ft_replay",
                replica=replica_id,
                replayed=report.packets_replayed,
                rebuilt_flows=report.flows_rebuilt,
            )

            now = self._now_ns()
            tracer.span(
                "replay",
                track,
                stage_start,
                now - stage_start,
                replayed=report.packets_replayed,
                rebuilt_flows=report.flows_rebuilt,
            )
            self._m_replay_ns.inc(now - stage_start)
            stage_start = now

            # 5. Deliver the buffered in-flight packets in arrival order.
            # These are live deliveries: their outcomes count.  A packet
            # whose flow is homed on *another* dead replica (concurrent
            # failure) re-buffers there and is delivered by that recovery.
            # With charge_recovery on, each delivery is charged the wall
            # time from failure detection to its delivery as simulated
            # stall — the recovery cost lands on the packets that paid
            # it, not just on a wall-clock side channel.
            charge = self.charge_recovery
            recovery_charges: List[StallCharge] = []
            for packet, arrival_ns in zip(dead.buffered, dead.arrivals):
                flow = str(packet.five_tuple().canonical())
                outcome = cluster.process(packet)
                if outcome is None:
                    continue
                report.packets_delivered += 1
                report.outcomes.append(outcome)
                if charge:
                    stall_ns = self._now_ns() - dead.killed_ns
                    charged = StallCharge(
                        replica=replica_id,
                        flow=flow,
                        arrival_ns=arrival_ns if arrival_ns is not None else 0.0,
                        stall_ns=stall_ns,
                        service_ns=outcome.latency_ns,
                        cause="failover",
                    )
                    recovery_charges.append(charged)
                    self.charged.append(charged)
                    report.packets_charged += 1
                    report.stall_charged_ns += stall_ns
                    if self.forensics is not None:
                        self.forensics.note_stall(charged)

            now = self._now_ns()
            tracer.span(
                "drain",
                track,
                stage_start,
                now - stage_start,
                delivered=report.packets_delivered,
            )
            self._m_drain_ns.inc(now - stage_start)
            stage_start = now

            # 6. Fresh checkpoints on every alive replica: a second
            # failure replays from now, not from the dead replica's era
            # (the replays and deliveries above bypassed the input logs).
            for rid in sorted(cluster.replicas):
                self.checkpoint_replica(rid, cause="post_recovery")
            now = self._now_ns()
            tracer.span(
                "re-checkpoint",
                track,
                stage_start,
                now - stage_start,
                replicas=len(cluster.replicas),
            )
        finally:
            self._in_recovery = False
        report.duration_s = time.perf_counter() - started
        self.recoveries.append(report)
        self._m_recoveries.inc()
        # The stall regime shifted the moment these deliveries were
        # charged: audit it *before* ft_failover_complete so the shift's
        # seq precedes the completion's in the causal timeline.
        if recovery_charges:
            emit_recovery_regime_shift(
                self.audit,
                replica_id,
                [charged.stall_ns for charged in recovery_charges],
            )
        self.audit.emit(
            "ft_failover_complete",
            replica=replica_id,
            flows_restored=report.flows_restored,
            flows_rebuilt=report.flows_rebuilt,
            replayed=report.packets_replayed,
            delivered=report.packets_delivered,
            duration_ms=round(report.duration_s * 1000.0, 3),
        )
        cluster.notify_placement("failover")
        return report

    def recover_all(self) -> List[RecoveryReport]:
        """Recover every dead replica (lowest id first)."""
        return [self.recover(rid) for rid in sorted(self.dead)]

    def charged_result(self) -> LoadResult:
        """The charged deliveries as a mergeable :class:`LoadResult`.

        Each latency is the delivery's ``service + stall`` (canonical
        component order, so forensic decomposition of these packets is
        exact by construction).  Merge it into a run's total so
        post-failover percentiles include the recovery stall::

            total = result.total.merge(ft.charged_result())
        """
        latencies = [charged.latency_ns for charged in self.charged]
        makespan = 0.0
        for charged in self.charged:
            finish = charged.arrival_ns + charged.latency_ns
            if finish > makespan:
                makespan = finish
        return LoadResult(
            offered=len(latencies),
            delivered=len(latencies),
            dropped=0,
            makespan_ns=makespan,
            latencies_ns=latencies,
        )

    def __repr__(self) -> str:
        return (
            f"<FaultTolerance interval={self.checkpoint_interval} "
            f"{len(self.cluster.replicas)} alive, {len(self.dead)} dead, "
            f"{len(self.recoveries)} recoveries>"
        )
