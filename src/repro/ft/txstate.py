"""Transactional shared state across chain replicas (TransNFV-style).

Most NF state partitions cleanly by flow, and ``repro.scale`` moves it
between replicas as a unit.  Two pieces of the paper's chains do *not*
partition: the NAT's external port pool (a port handed to replica A must
never be handed to replica B) and the monitor's cluster-wide aggregate
counters.  TransNFV's answer is to treat such state as a shared store
with transactional access rather than to partition it ad hoc; this
module supplies that store, sized for the simulator's single-threaded
interleaving model.

:class:`TransactionalStore` is a versioned key-value store with
optimistic concurrency: a :class:`Transaction` records the version of
every key it reads, stages its writes, and at commit validates that no
read key changed underneath it — per-key serialized commit, abort on
conflict.  Two properties matter for fault tolerance:

- **Idempotent commits.**  A transaction may carry a ``txn_id``; the
  store remembers applied ids, so replaying a packet whose state update
  already committed (recovery replays the input log *through the normal
  pipeline*) re-runs the transaction body but commits exactly once.
- **Survivability.**  The store lives outside every replica, so a
  replica death loses none of it — the recovered flow finds its NAT
  port allocation exactly where it left it.

:class:`SharedPortPool` and :class:`SharedAggregate` are the two
clients the chains use (``MazuNAT(port_pool=...)``,
``Monitor(aggregate=...)``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.flow import FiveTuple
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY


class TxnConflict(RuntimeError):
    """A read key changed between read and commit (optimistic abort)."""


class TransactionalStore:
    """Versioned key-value store with optimistic per-key commit/abort."""

    def __init__(
        self,
        audit: AuditLog = NULL_AUDIT,
        audit_commits: bool = False,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ):
        self.audit = audit
        #: emit ``txn_commit`` for every commit (aborts always audit);
        #: off by default so per-packet aggregate updates don't flood
        #: the decision log.
        self.audit_commits = audit_commits
        self._values: Dict[Any, Any] = {}
        self._versions: Dict[Any, int] = {}
        self._applied: Dict[Any, Any] = {}
        self.commits = 0
        self.aborts = 0
        self.replays_deduped = 0
        # Registry mirrors of the plain counters, so windowed telemetry
        # sees txn activity as per-window deltas (health's retry-rate
        # signal); off by default like every other metrics surface.
        self._m_commits = metrics.counter(
            "txn_commits_total", "transactions committed"
        )
        self._m_aborts = metrics.counter(
            "txn_aborts_total", "optimistic-conflict aborts"
        )
        self._m_deduped = metrics.counter(
            "txn_replays_deduped_total", "replayed transactions skipped as applied"
        )

    # -- direct reads (no isolation needed) ---------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._values.get(key, default)

    def version(self, key: Any) -> int:
        return self._versions.get(key, 0)

    def keys(self) -> List[Any]:
        return list(self._values)

    def applied(self, txn_id: Any) -> bool:
        """Has a transaction with this id already committed?"""
        return txn_id in self._applied

    def result_of(self, txn_id: Any) -> Any:
        """The committed result of an applied transaction id."""
        return self._applied.get(txn_id)

    # -- transactions -------------------------------------------------------

    def transaction(self, txn_id: Any = None, audit_commit: Optional[bool] = None) -> "Transaction":
        return Transaction(
            self,
            txn_id=txn_id,
            audit_commit=self.audit_commits if audit_commit is None else audit_commit,
        )

    def run(
        self,
        fn: Callable[["Transaction"], Any],
        txn_id: Any = None,
        max_retries: int = 8,
        audit_commit: Optional[bool] = None,
    ) -> Any:
        """Run ``fn(txn)`` and commit, retrying on optimistic conflicts.

        With a ``txn_id`` that already committed, ``fn`` is skipped and
        the remembered result returned — the exactly-once guarantee the
        recovery replay leans on.
        """
        if txn_id is not None and txn_id in self._applied:
            self.replays_deduped += 1
            self._m_deduped.inc()
            return self._applied[txn_id]
        for __ in range(max_retries):
            txn = self.transaction(txn_id=txn_id, audit_commit=audit_commit)
            result = fn(txn)
            try:
                txn.commit(result=result)
            except TxnConflict:
                continue
            return result
        raise TxnConflict(f"transaction {txn_id!r} aborted {max_retries} times")

    # -- commit machinery (called by Transaction) ---------------------------

    def _commit(self, txn: "Transaction", result: Any) -> None:
        for key, version in txn.reads.items():
            if self._versions.get(key, 0) != version:
                self.aborts += 1
                self._m_aborts.inc()
                self.audit.emit(
                    "txn_abort",
                    txn=_render_id(txn.txn_id),
                    key=_render_id(key),
                    expected=version,
                    found=self._versions.get(key, 0),
                )
                raise TxnConflict(
                    f"key {key!r} moved from version {version} to "
                    f"{self._versions.get(key, 0)}"
                )
        for key, value in txn.writes.items():
            if value is _DELETED:
                self._values.pop(key, None)
            else:
                self._values[key] = value
            self._versions[key] = self._versions.get(key, 0) + 1
        self.commits += 1
        self._m_commits.inc()
        if txn.txn_id is not None:
            self._applied[txn.txn_id] = result
        if txn.audit_commit:
            self.audit.emit(
                "txn_commit",
                txn=_render_id(txn.txn_id),
                reads=len(txn.reads),
                writes=len(txn.writes),
            )

    def __repr__(self) -> str:
        return (
            f"<TransactionalStore {len(self._values)} keys, "
            f"{self.commits} commits, {self.aborts} aborts>"
        )


class _Deleted:
    def __repr__(self):  # pragma: no cover - debug aid
        return "<deleted>"


_DELETED = _Deleted()


def _render_id(value: Any) -> str:
    return repr(value) if not isinstance(value, str) else value


class Transaction:
    """One optimistic transaction: read versions, staged writes."""

    def __init__(self, store: TransactionalStore, txn_id: Any = None, audit_commit: bool = False):
        self.store = store
        self.txn_id = txn_id
        self.audit_commit = audit_commit
        self.reads: Dict[Any, int] = {}
        self.writes: Dict[Any, Any] = {}
        self.committed = False

    def get(self, key: Any, default: Any = None) -> Any:
        if key in self.writes:
            staged = self.writes[key]
            return default if staged is _DELETED else staged
        self.reads.setdefault(key, self.store.version(key))
        return self.store.get(key, default)

    def set(self, key: Any, value: Any) -> None:
        self.writes[key] = value

    def delete(self, key: Any) -> None:
        self.writes[key] = _DELETED

    def commit(self, result: Any = None) -> None:
        if self.committed:
            raise RuntimeError("transaction already committed")
        self.store._commit(self, result)
        self.committed = True

    def abort(self, reason: str = "caller abort") -> None:
        self.store.aborts += 1
        self.store.audit.emit(
            "txn_abort", txn=_render_id(self.txn_id), key="", expected=-1,
            found=-1, reason=reason,
        )
        self.reads.clear()
        self.writes.clear()


class PortPoolExhausted(RuntimeError):
    """No free external ports remain in the shared pool."""


class SharedPortPool:
    """Cluster-global NAT port allocator on the transactional store.

    Allocation is sequential with an ordered free list, exactly like the
    per-replica allocator it replaces — so a single-runtime reference
    chain and an N-replica cluster hand out identical ports for the same
    packet order.  ``acquire`` is **idempotent per flow**: the second
    call for the same internal five-tuple returns the existing port.
    That one property does double duty — it makes recovery replay
    deterministic (the replayed first packet finds the original
    allocation) *and* it is what prevents cross-replica double
    allocation, since every replica allocates through this pool.
    """

    def __init__(
        self,
        store: TransactionalStore,
        port_range: Tuple[int, int] = (10000, 60000),
        name: str = "natpool",
    ):
        self.store = store
        self.name = name
        self.port_lo, self.port_hi = port_range
        if self.port_lo > self.port_hi:
            raise ValueError(f"invalid port range: {port_range!r}")
        store.run(self._init_txn, txn_id=(name, "init"))

    def _init_txn(self, txn: Transaction) -> None:
        txn.set((self.name, "next"), self.port_lo)
        txn.set((self.name, "free"), ())

    # -- allocation ---------------------------------------------------------

    def acquire(self, flow: FiveTuple) -> int:
        """The external port owned by ``flow``, allocating on first use."""

        def body(txn: Transaction) -> int:
            existing = txn.get((self.name, "byflow", flow))
            if existing is not None:
                return existing
            free: Tuple[int, ...] = txn.get((self.name, "free"), ())
            if free:
                port, free = free[0], free[1:]
                txn.set((self.name, "free"), free)
            else:
                port = txn.get((self.name, "next"), self.port_lo)
                if port > self.port_hi:
                    raise PortPoolExhausted(
                        f"{self.name}: shared port pool "
                        f"{self.port_lo}-{self.port_hi} exhausted"
                    )
                txn.set((self.name, "next"), port + 1)
            txn.set((self.name, "byflow", flow), port)
            txn.set((self.name, "owner", port), flow)
            return port

        return self.store.run(body, audit_commit=self.store.audit_commits)

    def release(self, flow: FiveTuple) -> bool:
        """Return the flow's port to the free list (idempotent)."""

        def body(txn: Transaction) -> bool:
            port = txn.get((self.name, "byflow", flow))
            if port is None:
                return False
            txn.delete((self.name, "byflow", flow))
            txn.delete((self.name, "owner", port))
            free: Tuple[int, ...] = txn.get((self.name, "free"), ())
            if port not in free:
                txn.set((self.name, "free"), free + (port,))
            return True

        return self.store.run(body, audit_commit=self.store.audit_commits)

    # -- introspection ------------------------------------------------------

    def port_of(self, flow: FiveTuple) -> Optional[int]:
        return self.store.get((self.name, "byflow", flow))

    def owner_of(self, port: int) -> Optional[FiveTuple]:
        return self.store.get((self.name, "owner", port))

    def allocated(self) -> Dict[FiveTuple, int]:
        out: Dict[FiveTuple, int] = {}
        for key in self.store.keys():
            if isinstance(key, tuple) and key[:2] == (self.name, "byflow"):
                out[key[2]] = self.store.get(key)
        return out

    def __repr__(self) -> str:
        return f"<SharedPortPool {self.name} {len(self.allocated())} allocated>"


class SharedAggregate:
    """Cluster-wide counters with exactly-once increments.

    The monitor's per-flow counters partition by flow and migrate with
    it; the *cluster total* does not.  Each increment carries a
    deterministic transaction id — ``(flow key, per-flow packet count
    after the increment)`` — so a recovery replay that re-runs the same
    packet re-offers the same id and the store dedupes it: the aggregate
    counts every packet exactly once no matter how many times the
    pipeline saw it.
    """

    def __init__(self, store: TransactionalStore, name: str = "aggregate"):
        self.store = store
        self.name = name

    def add(self, txn_id: Any, packets: int = 1, bytes_: int = 0) -> bool:
        """Apply one increment; returns False when it was a replay dupe."""
        full_id = (self.name, txn_id)
        if self.store.applied(full_id):
            self.store.replays_deduped += 1
            return False

        def body(txn: Transaction) -> bool:
            txn.set(
                (self.name, "packets"),
                txn.get((self.name, "packets"), 0) + packets,
            )
            txn.set(
                (self.name, "bytes"), txn.get((self.name, "bytes"), 0) + bytes_
            )
            return True

        return self.store.run(body, txn_id=full_id)

    @property
    def packets(self) -> int:
        return self.store.get((self.name, "packets"), 0)

    @property
    def bytes(self) -> int:
        return self.store.get((self.name, "bytes"), 0)

    def __repr__(self) -> str:
        return f"<SharedAggregate {self.name} {self.packets}pkt/{self.bytes}B>"
