"""Fault tolerance: checkpointed flow state, replay-based failover,
transactional shared state.

A :class:`~repro.scale.cluster.ScaleCluster` survives replica death
with the classic snapshot + log recovery pair, built on the migration
machinery the cluster already trusts:

- :mod:`repro.ft.checkpoint` — periodic per-flow snapshots (classifier
  entry, Local/Global MAT rows, events, NF state) captured by a
  non-destructive export → deep-copy → re-import round-trip.
- :mod:`repro.ft.pktlog` — a bounded per-replica input-packet log,
  trimmed at each checkpoint; recovery = restore the snapshot, then
  replay the logged packets through the normal pipeline.
- :mod:`repro.ft.faults` + :mod:`repro.ft.failover` — deterministic
  fault injection on the packet-index clock, and the coordinator that
  buffers in-flight packets, re-pins the dead replica's flows onto
  peers via the sharder, restores, replays, and delivers in order.
- :mod:`repro.ft.txstate` — a TransNFV-style transactional store with
  per-key optimistic concurrency and idempotent commits, backing the
  state that must be shared *across* replicas (NAT port pool, monitor
  aggregates) so recovery replay commits exactly once.
- :mod:`repro.ft.verify` — the §VII-C equivalence oracle extended
  across a failure: loss-free, duplicate-free, state-identical.
- :mod:`repro.ft.report` — the ``repro ft report`` recovery
  post-mortem over the run's audit/metrics artifacts.

See ``docs/fault_tolerance.md`` for the protocol walk-through.
"""

from repro.ft.checkpoint import (
    CheckpointManager,
    FlowCheckpoint,
    capture_flow,
    restore_flow,
)
from repro.ft.failover import (
    DeadReplica,
    FailoverError,
    FaultTolerance,
    RecoveryReport,
)
from repro.ft.faults import FaultInjector
from repro.ft.pktlog import LogEntry, PacketLog
from repro.ft.report import render_ft_report
from repro.ft.txstate import (
    PortPoolExhausted,
    SharedAggregate,
    SharedPortPool,
    Transaction,
    TransactionalStore,
    TxnConflict,
)
from repro.ft.verify import FailoverVerificationReport, verify_equivalence_failover

__all__ = [
    "CheckpointManager",
    "DeadReplica",
    "FailoverError",
    "FailoverVerificationReport",
    "FaultInjector",
    "FaultTolerance",
    "FlowCheckpoint",
    "LogEntry",
    "PacketLog",
    "PortPoolExhausted",
    "RecoveryReport",
    "SharedAggregate",
    "SharedPortPool",
    "Transaction",
    "TransactionalStore",
    "TxnConflict",
    "capture_flow",
    "render_ft_report",
    "restore_flow",
    "verify_equivalence_failover",
]
