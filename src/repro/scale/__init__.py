"""Horizontal scaling: sharded chain replicas with correct flow migration.

The paper's prototype runs one chain instance; serving millions of flows
means replicating the chain across cores and moving flows between
replicas without breaking stateful NFs.  This package supplies the four
pieces:

- :mod:`repro.scale.sharder` — RSS-style five-tuple sharding onto
  weighted replicas through a pluggable indirection table, with per-flow
  pins and minimal-remap repartitioning.
- :mod:`repro.scale.cluster` — :class:`ScaleCluster`, N independent
  ``SpeedyBox``+``Platform`` chain copies driven on one shared sim
  engine (optionally contending for a physical core pool), plus the
  freeze/buffer/replay migration choreography.
- :mod:`repro.scale.migration` — :class:`FlowMigrator`, the atomic
  transfer of a flow's classifier entry, Local/Global MAT rules, events
  and NF per-flow state, with handler rebinding to the target replica.
- :mod:`repro.scale.autoscaler` — watermark-driven scale-out/in over
  the ``repro.obs`` signal surfaces.

See ``docs/scaling.md`` for the protocol walk-through.
"""

from repro.scale.autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.scale.cluster import ChainReplica, ClusterLoadResult, ScaleCluster
from repro.scale.migration import (
    FlowMigrator,
    MigrationError,
    MigrationReport,
    chain_state_snapshot,
    export_direction,
    observed_tuples,
    rebind_record,
    wire_directions,
)
from repro.scale.sharder import FlowSharder, IndirectionTable, shard_hash

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ChainReplica",
    "ClusterLoadResult",
    "FlowMigrator",
    "FlowSharder",
    "IndirectionTable",
    "MigrationError",
    "MigrationReport",
    "ScaleCluster",
    "ScaleDecision",
    "chain_state_snapshot",
    "export_direction",
    "observed_tuples",
    "rebind_record",
    "shard_hash",
    "wire_directions",
]
