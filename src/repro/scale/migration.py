"""The flow-state migration protocol.

Moving a live flow between chain replicas is only correct if *all* of its
state moves as one unit (Khalid & Akella's correctness condition for
chained stateful NFs): the classifier's connection entry, every NF's
Local MAT rule, the consolidated Global MAT rule, the registered events,
and the NFs' own per-flow state (NAT mapping, Maglev conntrack, Snort
flowbits, monitor counters).  Leaving any piece behind silently forks the
flow's state; copying instead of moving double-counts it.

:class:`FlowMigrator` implements the transfer between two runtimes that
were built from the *same chain factory* (same NF types and names).  The
caller — :class:`repro.scale.ScaleCluster` — provides the atomicity: it
freezes the flow at the sharder and buffers its packets before calling
:meth:`FlowMigrator.migrate`, so no packet can observe a half-moved flow.

Two subtleties the implementation works around:

- **Observed keys.**  NFs key per-flow state by the five-tuple they see
  at their *chain position* — after every upstream rewrite.  The migrator
  first walks both directions of the flow down the chain through the
  read-only :meth:`~repro.nf.base.NetworkFunction.flow_through` hooks to
  derive each NF's observed tuple, and only then starts exporting (the
  walk needs the mappings that export detaches).
- **Recorded handlers.**  Local-MAT state functions, Global-MAT schedule
  batches and event conditions are bound methods of the *source*
  replica's NF instances.  The migrator rebinds each to the same-named NF
  on the target, in place — the schedule shares its
  :class:`~repro.core.state_function.StateFunction` objects with the
  local rules, so one mutation fixes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.core.classifier import fid_of
from repro.core.framework import FlowRecord, ServiceChain, SpeedyBox
from repro.net.flow import FiveTuple
from repro.nf.base import NetworkFunction
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.trace import NULL_TRACER, PacketTracer

Runtime = Union[ServiceChain, SpeedyBox]


class MigrationError(RuntimeError):
    """The flow cannot be moved between these runtimes."""


@dataclass
class MigrationReport:
    """What one migration transferred."""

    flow: FiveTuple
    fids: Tuple[int, ...] = ()
    nf_states_moved: int = 0
    local_rules_moved: int = 0
    global_rules_moved: int = 0
    events_moved: int = 0
    handlers_rebound: int = 0
    #: freeze-buffer packets the caller replays on the target
    packets_replayed: int = 0

    def total_items(self) -> int:
        return (
            self.nf_states_moved
            + self.local_rules_moved
            + self.global_rules_moved
            + self.events_moved
        )


def observed_tuples(nfs: Sequence[NetworkFunction], flow: FiveTuple) -> List[FiveTuple]:
    """The five-tuple each NF observes at its position, for one direction."""
    observed: List[FiveTuple] = []
    current = flow
    for nf in nfs:
        observed.append(current)
        current = nf.flow_through(current)
    return observed


def wire_directions(
    nfs: Sequence[NetworkFunction], flow: FiveTuple, limit: int = 8
) -> List[FiveTuple]:
    """Every wire-ingress five-tuple this connection can arrive with.

    For a header-preserving chain that is just ``flow`` and its reverse.
    But when an NF rewrites the tuple (NAT, load balancer), the peer's
    return traffic arrives addressed to the *translated* endpoint — i.e.
    the reverse of the direction's **egress** tuple, not of its ingress
    tuple.  Starting from ``flow`` and ``flow.reversed()``, repeatedly
    walking each direction down the chain and adding its egress-reverse
    closes the set (bounded by ``limit`` as a cycle guard).
    """
    directions: List[FiveTuple] = []
    pending: List[FiveTuple] = [flow, flow.reversed()]
    while pending and len(directions) < limit:
        direction = pending.pop(0)
        if direction in directions:
            continue
        directions.append(direction)
        egress = direction
        for nf in nfs:
            egress = nf.flow_through(egress)
        returned = egress.reversed()
        if returned not in directions and returned not in pending:
            pending.append(returned)
    return directions


def chain_state_snapshot(
    nfs: Sequence[NetworkFunction], flow: FiveTuple
) -> Dict[str, tuple]:
    """Comparable per-NF state of every direction of ``flow`` (oracle use)."""
    snapshot: Dict[str, tuple] = {}
    for direction in wire_directions(nfs, flow):
        for nf, observed in zip(nfs, observed_tuples(nfs, direction)):
            state = nf.state_snapshot(observed)
            if state is not None:
                snapshot.setdefault(nf.name, ())
                snapshot[nf.name] = snapshot[nf.name] + (state,)
    return snapshot


def export_direction(src: SpeedyBox, direction: FiveTuple, reason: str = "flow_export"):
    """Export one direction's SpeedyBox tables, tolerating FID collisions.

    Returns ``None`` (moving nothing) when the 20-bit FID of
    ``direction`` belongs to a different live flow — the record is put
    back untouched.  Shared by the migrator and the checkpoint capture
    path (:mod:`repro.ft.checkpoint`), which must skip exactly the same
    collided directions; ``reason`` labels the compiled-lane
    invalidation in the audit log.
    """
    fid = fid_of(direction)
    record = src.export_flow(fid, reason=reason)
    if record is None:
        return None
    entry = record.classifier_entry
    if entry is not None and entry.five_tuple != direction:
        src.import_flow(record, reason=reason)
        return None
    return record


def rebind_record(
    record: FlowRecord,
    src_nfs: Sequence[NetworkFunction],
    dst_nfs: Sequence[NetworkFunction],
) -> int:
    """Re-home every recorded handler in ``record`` from src NFs to dst NFs.

    Local-MAT state functions, Global-MAT schedule batches and event
    conditions are bound methods of (and may take as arguments) the
    source chain's NF instances; importing the record anywhere else
    requires rebinding each to the same-positioned NF on the target.
    Used by the migrator and by checkpoint restore
    (:mod:`repro.ft.checkpoint`), where the "source" is a dead replica's
    still-live NF objects.  Returns the number of handlers rebound.
    """
    nf_map = {id(s): d for s, d in zip(src_nfs, dst_nfs)}
    rebound = 0

    def rebind(handler: Callable) -> Callable:
        nonlocal rebound
        owner = getattr(handler, "__self__", None)
        target = nf_map.get(id(owner)) if owner is not None else None
        if target is None:
            return handler
        rebound += 1
        return handler.__func__.__get__(target)

    def rebind_args(args: tuple) -> tuple:
        return tuple(
            nf_map.get(id(arg), arg) if isinstance(arg, NetworkFunction) else arg
            for arg in args
        )

    def rebind_functions(functions) -> None:
        for fn in functions:
            fn.handler = rebind(fn.handler)
            fn.args = rebind_args(fn.args)

    for rule in record.local_rules.values():
        rebind_functions(rule.sf_batch)
    if record.global_rule is not None:
        # Usually the same StateFunction objects as the local rules
        # (build_rule shares batches); rebinding is idempotent.
        for wave in record.global_rule.schedule.waves:
            for batch in wave:
                rebind_functions(batch)
    for event in record.events:
        event.condition = rebind(event.condition)
        event.args = rebind_args(event.args)
        if event.update_function is not None:
            event.update_function = rebind(event.update_function)
        if event.update_state_functions is not None:
            rebind_functions(event.update_state_functions)
    return rebound


class FlowMigrator:
    """Atomic flow-state transfer between same-shape chain runtimes."""

    def __init__(
        self,
        metrics: MetricsRegistry = NULL_REGISTRY,
        tracer: PacketTracer = NULL_TRACER,
        audit: AuditLog = NULL_AUDIT,
    ):
        self.tracer = tracer
        self.audit = audit
        self.migrations = 0
        self._m_migrations = metrics.counter(
            "flow_migrations_total", "flows moved between chain replicas"
        )
        self._m_items = metrics.counter(
            "migrated_state_items_total", "state items (rules, events, NF states) moved"
        )

    # -- the protocol ---------------------------------------------------------

    def migrate(
        self, src: Runtime, dst: Runtime, flow: FiveTuple, replayed: int = 0
    ) -> MigrationReport:
        """Move every trace of ``flow`` (both directions) from src to dst.

        The caller must have frozen the flow's traffic first, and passes
        ``replayed`` — the freeze-buffer packet count it will replay on
        the target — so the audit trail records how much traffic each
        transfer displaced (comparable to the recovery trail's replay
        counts).  Raises :class:`MigrationError` when the chains are not
        the same shape or exactly one side is a SpeedyBox runtime.
        """
        src_nfs, dst_nfs = self._paired_nfs(src, dst)
        report = MigrationReport(flow=flow, packets_replayed=replayed)

        # Phase 1: derive the flow's wire directions (a NAT'd flow's
        # return traffic arrives on the *translated* tuple) and each NF's
        # observed tuple per direction — all *before* any state detaches,
        # since these walks read the mappings that export removes.
        directions = tuple(wire_directions(src_nfs, flow))
        observed = {d: observed_tuples(src_nfs, d) for d in directions}

        # Phase 2: move SpeedyBox table state (classifier entry, Local
        # MAT rules, Global MAT rule, events), one FID per direction.
        if isinstance(src, SpeedyBox):
            for direction in directions:
                record = self._export_direction(src, direction)
                if record is None:
                    continue
                report.fids = report.fids + (record.fid,)
                report.local_rules_moved += len(record.local_rules)
                report.global_rules_moved += int(record.global_rule is not None)
                report.events_moved += len(record.events)
                report.handlers_rebound += rebind_record(record, src_nfs, dst_nfs)
                dst.import_flow(record)

        # Phase 3: move the NFs' own per-flow state at each observed key.
        for direction in directions:
            for src_nf, dst_nf, key in zip(src_nfs, dst_nfs, observed[direction]):
                state = src_nf.export_flow_state(key)
                if state is None:
                    continue
                dst_nf.import_flow_state(key, state)
                report.nf_states_moved += 1

        self.migrations += 1
        self._m_migrations.inc()
        self._m_items.inc(report.total_items())
        self.audit.emit(
            "migration_transfer",
            flow=str(flow),
            fids=list(report.fids),
            items=report.total_items(),
            rebound=report.handlers_rebound,
            replayed=replayed,
        )
        if self.tracer.enabled:
            self.tracer.instant(
                f"migrate {flow}",
                "scale:migrations",
                0.0,
                items=report.total_items(),
                fids=list(report.fids),
            )
        return report

    # -- helpers --------------------------------------------------------------

    def _paired_nfs(
        self, src: Runtime, dst: Runtime
    ) -> Tuple[List[NetworkFunction], List[NetworkFunction]]:
        if isinstance(src, SpeedyBox) != isinstance(dst, SpeedyBox):
            raise MigrationError(
                "cannot migrate between a SpeedyBox runtime and a plain chain"
            )
        src_nfs, dst_nfs = list(src.nfs), list(dst.nfs)
        if [type(nf) for nf in src_nfs] != [type(nf) for nf in dst_nfs] or [
            nf.name for nf in src_nfs
        ] != [nf.name for nf in dst_nfs]:
            raise MigrationError(
                f"replica chains differ: {[nf.name for nf in src_nfs]} vs "
                f"{[nf.name for nf in dst_nfs]}"
            )
        return src_nfs, dst_nfs

    def _export_direction(self, src: SpeedyBox, direction: FiveTuple):
        """Export one direction's tables, tolerating FID collisions."""
        return export_direction(src, direction)
