"""The load-driven autoscaler: watermarks over observability signals.

Classic control loop: after each observation window (one loaded run),
compare the window's :class:`~repro.obs.signals.SignalSample` against
high/low watermarks.  Any signal above its high watermark triggers
scale-out (add a replica, repartition the indirection table, migrate the
moved buckets' flows); *all* signals below their low watermarks triggers
scale-in.  A cooldown of quiet windows between actions damps oscillation
— the flap-avoidance every production autoscaler needs.

Scaling actions reuse the cluster's migration protocol, so elasticity
inherits its correctness: no packet loss, no state left behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.net.packet import Packet
from repro.obs.signals import ClusterSignals, SignalSample
from repro.platform.base import PlatformConfig
from repro.scale.cluster import ClusterLoadResult, ScaleCluster


@dataclass
class AutoscalerConfig:
    """Watermarks and bounds for the control loop."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: scale out when ring high-water exceeds this fraction of capacity
    high_ring_occupancy: float = 0.5
    low_ring_occupancy: float = 0.1
    #: scale out when offered service time / core-time exceeds this
    high_core_utilisation: float = 0.85
    low_core_utilisation: float = 0.35
    #: optional latency SLO (ns); None disables the latency trigger
    high_p99_ns: Optional[float] = None
    #: quiet windows required between two scaling actions
    cooldown_windows: int = 1

    def __post_init__(self):
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )


@dataclass
class ScaleDecision:
    """What one observation window concluded."""

    action: int  # +1 scale out, -1 scale in, 0 hold
    reason: str
    sample: SignalSample
    replicas_after: int = 0

    @property
    def scaled(self) -> bool:
        return self.action != 0


class Autoscaler:
    """Drives a :class:`ScaleCluster` from watermark comparisons."""

    def __init__(
        self,
        cluster: ScaleCluster,
        config: Optional[AutoscalerConfig] = None,
        signals: Optional[ClusterSignals] = None,
        health=None,
    ):
        self.cluster = cluster
        self.config = config or AutoscalerConfig()
        ring_capacity = (cluster.config or PlatformConfig()).ring_capacity
        self.signals = signals or ClusterSignals(cluster.metrics, ring_capacity)
        #: optional :class:`repro.obs.health.HealthModel` — a critical
        #: replica adds scale-out pressure; any unhealthy replica vetoes
        #: scale-in (shedding capacity while a survivor is struggling
        #: would dump its flows onto the struggling one)
        self.health = health
        self.decisions: List[ScaleDecision] = []
        self._windows_since_action = self.config.cooldown_windows
        self.placement_events: List[str] = []
        cluster.add_placement_listener(self.note_placement_event)

    def note_placement_event(self, kind: str) -> None:
        """A placement change happened outside this loop (e.g. failover).

        Re-homing flows perturbs every signal the watermarks read — ring
        occupancy and core demand both shift with the flows — so treat it
        exactly like our own scaling action and restart the cooldown:
        the next window holds while the cluster settles.
        """
        self.placement_events.append(kind)
        self._windows_since_action = 0

    # -- pure decision logic --------------------------------------------------

    def evaluate(self, sample: SignalSample) -> ScaleDecision:
        """Watermark comparison only — no side effects."""
        cfg = self.config
        replicas = self.cluster.replica_count
        pressures = []
        if sample.ring_occupancy >= cfg.high_ring_occupancy:
            pressures.append(f"ring occupancy {sample.ring_occupancy:.0%}")
        if sample.core_utilisation >= cfg.high_core_utilisation:
            pressures.append(f"core utilisation {sample.core_utilisation:.0%}")
        if cfg.high_p99_ns is not None and sample.p99_latency_ns >= cfg.high_p99_ns:
            pressures.append(f"p99 {sample.p99_latency_ns / 1000.0:.1f}us over SLO")
        unhealthy: list = []
        if self.health is not None:
            from repro.obs.health import CRITICAL

            unhealthy = self.health.unhealthy_replicas()
            critical = [
                replica
                for replica in unhealthy
                if self.health.state_of(replica) == CRITICAL
            ]
            if critical:
                pressures.append(
                    "critical replicas: " + ", ".join(str(r) for r in critical)
                )

        if self._windows_since_action < cfg.cooldown_windows:
            return ScaleDecision(0, "cooldown", sample, replicas)
        if pressures and replicas < cfg.max_replicas:
            return ScaleDecision(+1, " + ".join(pressures), sample, replicas + 1)
        if pressures:
            return ScaleDecision(0, f"at max_replicas: {' + '.join(pressures)}", sample, replicas)
        idle = (
            sample.ring_occupancy <= cfg.low_ring_occupancy
            and sample.core_utilisation <= cfg.low_core_utilisation
        )
        if idle and replicas > cfg.min_replicas:
            if unhealthy:
                return ScaleDecision(
                    0,
                    "scale-in vetoed: unhealthy replicas "
                    + ", ".join(str(r) for r in unhealthy),
                    sample,
                    replicas,
                )
            return ScaleDecision(-1, "all signals below low watermarks", sample, replicas - 1)
        return ScaleDecision(0, "steady", sample, replicas)

    # -- the control loop -----------------------------------------------------

    def observe(self, result: ClusterLoadResult) -> SignalSample:
        """Fold one loaded-run window into a signal sample."""
        cluster = self.cluster
        config = cluster.config or PlatformConfig()
        return self.signals.sample(
            makespan_ns=result.total.makespan_ns,
            p99_latency_ns=result.total.latency_percentile(0.99),
            throughput_mpps=result.total.throughput_mpps,
            busy_ns=result.busy_ns,
            cores_per_replica=float(config.worker_cores),
            physical_cores=cluster.physical_cores,
        )

    def step(
        self, packets: Sequence[Packet], inter_arrival_ns: float = 0.0
    ) -> ScaleDecision:
        """Run one window, decide, and apply the decision to the cluster."""
        result = self.cluster.run_load(packets, inter_arrival_ns=inter_arrival_ns)
        sample = self.observe(result)
        decision = self.evaluate(sample)
        replicas_before = self.cluster.replica_count
        if decision.action > 0:
            self.cluster.scale_out()
            self._windows_since_action = 0
        elif decision.action < 0:
            self.cluster.scale_in()
            self._windows_since_action = 0
        else:
            self._windows_since_action += 1
        decision.replicas_after = self.cluster.replica_count
        self.decisions.append(decision)
        audit_fields = dict(
            action=decision.action,
            reason=decision.reason,
            replicas_before=replicas_before,
            replicas_after=decision.replicas_after,
            ring_occupancy=sample.ring_occupancy,
            core_utilisation=sample.core_utilisation,
            p99_latency_ns=sample.p99_latency_ns,
            throughput_mpps=sample.throughput_mpps,
        )
        if self.health is not None:
            audit_fields["cluster_health"] = self.health.worst_state()
        self.cluster.audit.emit("autoscale_decision", **audit_fields)
        return decision
