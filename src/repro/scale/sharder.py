"""RSS-style flow sharding onto chain replicas.

A hardware NIC spreads flows over cores by hashing the five-tuple into a
small *indirection table* of buckets, each bucket naming a queue (here: a
chain replica).  We reproduce that scheme in software because its two
properties are exactly what flow-state migration needs:

- **stability** — a flow's bucket is a pure function of its five-tuple,
  so the same flow always lands on the same replica until the table is
  explicitly repartitioned;
- **minimal remapping** — repartitioning moves whole buckets, and the
  largest-remainder quota assignment moves only the buckets that *must*
  move: growing from N to N+1 equal-weight replicas relocates about
  ``size/(N+1)`` buckets, all of them onto the new replica.

Both directions of a connection must reach the same replica (the NAT's
reverse mapping, Snort's flowbits and the monitor counters live there),
so hashing is over :meth:`~repro.net.flow.FiveTuple.canonical`.

Per-flow *pins* override the table during migrations: a migrated flow is
pinned to its new home so it does not snap back when the table changes.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.net.flow import FiveTuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def shard_hash(flow: FiveTuple) -> int:
    """Direction-independent 64-bit FNV-1a over the canonical five-tuple.

    Deliberately seeded differently from the classifier's FID hash so
    sharding and FID assignment stay uncorrelated.
    """
    canonical = flow.canonical()
    data = struct.pack(
        "!IIHHB",
        canonical.src_ip,
        canonical.dst_ip,
        canonical.src_port,
        canonical.dst_port,
        canonical.protocol,
    )
    value = _FNV_OFFSET ^ 0x5CA1AB1E
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def _largest_remainder_quotas(weights: Mapping[int, float], size: int) -> Dict[int, int]:
    """Integer bucket quotas proportional to weight, summing to ``size``."""
    total = float(sum(weights.values()))
    if total <= 0:
        raise ValueError("total weight must be positive")
    raw = {rid: size * weight / total for rid, weight in weights.items()}
    quotas = {rid: int(value) for rid, value in raw.items()}
    leftover = size - sum(quotas.values())
    by_remainder = sorted(raw, key=lambda rid: (-(raw[rid] - quotas[rid]), rid))
    for rid in by_remainder[:leftover]:
        quotas[rid] += 1
    return quotas


class IndirectionTable:
    """bucket → replica, repartitioned with minimal movement.

    The table is the pluggable policy object of the sharder: subclass and
    override :meth:`rebalance` for a different repartitioning strategy
    (e.g. consistent hashing); the sharder only relies on ``size``,
    ``replica_of`` and ``rebalance``'s moved-bucket report.
    """

    def __init__(self, size: int = 128):
        if size <= 0:
            raise ValueError(f"indirection table size must be positive, got {size!r}")
        self.size = size
        self._buckets: List[Optional[int]] = [None] * size
        self.generation = 0

    def replica_of(self, bucket: int) -> int:
        replica = self._buckets[bucket]
        if replica is None:
            raise RuntimeError("indirection table not yet populated; call rebalance()")
        return replica

    def buckets_snapshot(self) -> Tuple[Optional[int], ...]:
        return tuple(self._buckets)

    def rebalance(
        self, weights: Mapping[int, float]
    ) -> Dict[int, Tuple[Optional[int], int]]:
        """Repartition to the given replica weights; move as little as possible.

        Every bucket keeps its current replica while that replica stays
        within its new quota; orphaned buckets (owner removed) and
        over-quota spill move to the replicas with remaining deficit, in
        ascending replica id.  Returns ``{bucket: (old, new)}`` for every
        bucket that changed owner.
        """
        if not weights:
            raise ValueError("rebalance needs at least one replica")
        for rid, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"replica {rid} weight must be positive, got {weight!r}")
        quotas = _largest_remainder_quotas(weights, self.size)
        kept: Dict[int, int] = {rid: 0 for rid in quotas}
        homeless: List[int] = []
        for bucket, owner in enumerate(self._buckets):
            if owner in quotas and kept[owner] < quotas[owner]:
                kept[owner] += 1
            else:
                homeless.append(bucket)

        deficits = [(rid, quotas[rid] - kept[rid]) for rid in sorted(quotas)]
        moved: Dict[int, Tuple[Optional[int], int]] = {}
        cursor = iter(homeless)
        for rid, deficit in deficits:
            for __ in range(deficit):
                bucket = next(cursor)
                moved[bucket] = (self._buckets[bucket], rid)
                self._buckets[bucket] = rid
        if moved:
            self.generation += 1
        return moved


class FlowSharder:
    """Hash five-tuples onto weighted chain replicas, RSS style."""

    def __init__(
        self,
        replicas: Union[int, Mapping[int, float], Sequence[int]],
        buckets: int = 128,
        table: Optional[IndirectionTable] = None,
    ):
        if isinstance(replicas, int):
            weights: Dict[int, float] = {rid: 1.0 for rid in range(replicas)}
        elif isinstance(replicas, Mapping):
            weights = dict(replicas)
        else:
            weights = {rid: 1.0 for rid in replicas}
        if not weights:
            raise ValueError("a sharder needs at least one replica")
        self.table = table or IndirectionTable(buckets)
        self._weights = weights
        self._pins: Dict[FiveTuple, int] = {}
        self.table.rebalance(weights)

    # -- lookup ---------------------------------------------------------------

    @property
    def replica_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._weights))

    @property
    def weights(self) -> Dict[int, float]:
        return dict(self._weights)

    def bucket_of(self, flow: FiveTuple) -> int:
        return shard_hash(flow) % self.table.size

    def replica_for(self, flow: FiveTuple) -> int:
        """The replica this flow (either direction) belongs to right now."""
        pinned = self._pins.get(flow.canonical())
        if pinned is not None:
            return pinned
        return self.table.replica_of(self.bucket_of(flow))

    # -- pins (migration overrides) -------------------------------------------

    def pin(self, flow: FiveTuple, replica_id: int) -> None:
        if replica_id not in self._weights:
            raise KeyError(f"unknown replica {replica_id!r}")
        self._pins[flow.canonical()] = replica_id

    def unpin(self, flow: FiveTuple) -> bool:
        return self._pins.pop(flow.canonical(), None) is not None

    def pinned_flows(self) -> Dict[FiveTuple, int]:
        return dict(self._pins)

    # -- repartitioning -------------------------------------------------------

    def set_weights(
        self, weights: Mapping[int, float]
    ) -> Dict[int, Tuple[Optional[int], int]]:
        """Install a new replica set/weighting; returns the moved buckets."""
        if not weights:
            raise ValueError("a sharder needs at least one replica")
        moved = self.table.rebalance(weights)
        self._weights = dict(weights)
        for flow, rid in list(self._pins.items()):
            if rid not in self._weights:
                del self._pins[flow]
        return moved

    def add_replica(
        self, replica_id: int, weight: float = 1.0, rebalance: bool = True
    ) -> Dict[int, Tuple[Optional[int], int]]:
        """Register a replica; with ``rebalance=False`` it joins with no
        buckets (flows reach it only via pins until the next rebalance)."""
        if replica_id in self._weights:
            raise ValueError(f"replica {replica_id!r} already present")
        if not rebalance:
            if weight <= 0:
                raise ValueError(f"replica weight must be positive, got {weight!r}")
            self._weights[replica_id] = weight
            return {}
        weights = dict(self._weights)
        weights[replica_id] = weight
        return self.set_weights(weights)

    def remove_replica(self, replica_id: int) -> Dict[int, Tuple[Optional[int], int]]:
        if replica_id not in self._weights:
            raise KeyError(f"unknown replica {replica_id!r}")
        if len(self._weights) == 1:
            raise ValueError("cannot remove the last replica")
        weights = dict(self._weights)
        del weights[replica_id]
        return self.set_weights(weights)

    def __repr__(self) -> str:
        return (
            f"<FlowSharder {len(self._weights)} replicas, "
            f"{self.table.size} buckets, {len(self._pins)} pins>"
        )
