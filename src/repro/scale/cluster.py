"""Replica manager: N chain copies behind one sharder, on one sim engine.

:class:`ScaleCluster` instantiates N independent ``SpeedyBox`` (or
baseline ``ServiceChain``) + ``Platform`` copies from one chain factory,
shards flows across them with :class:`~repro.scale.sharder.FlowSharder`,
and drives every replica's pipeline on a *shared* discrete-event engine
so they advance on the same simulated clock — and, when
``physical_cores`` is set, contend for a common core pool instead of
each enjoying its own private machine.

It also owns the migration choreography (the part the
:class:`~repro.scale.migration.FlowMigrator` deliberately does not):

1. ``begin_migration(flow)`` freezes the flow at the sharder — packets
   of either direction arriving while frozen are *buffered*, never
   dropped and never processed by the wrong replica;
2. ``complete_migration(flow, dst)`` drains (there are no in-flight
   packets outside the buffer in this single-threaded model), transfers
   the flow's whole state as one unit, pins the flow to its new home,
   and replays the buffered packets there in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.span import FlowSpanRecorder
from repro.obs.trace import NULL_TRACER, PacketTracer
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.platform.base import (
    LoadResult,
    PacketOutcome,
    PipelineRun,
    Platform,
    PlatformConfig,
)
from repro.scale.migration import (
    FlowMigrator,
    MigrationError,
    MigrationReport,
    wire_directions,
)
from repro.scale.sharder import FlowSharder
from repro.sim import Engine, Resource, analytic_replay

PLATFORM_CLASSES = {"bess": BessPlatform, "onvm": OpenNetVMPlatform}

ChainFactory = Callable[[], Sequence[NetworkFunction]]


@dataclass
class ChainReplica:
    """One chain copy: its id, its platform, and the runtime inside it."""

    replica_id: int
    platform: Platform

    @property
    def runtime(self) -> Union[ServiceChain, SpeedyBox]:
        return self.platform.runtime

    @property
    def label(self) -> str:
        return self.platform.label


@dataclass
class ClusterLoadResult:
    """Aggregate + per-replica results of one loaded cluster run."""

    total: LoadResult
    per_replica: Dict[int, LoadResult]
    #: total requested service time per replica (ns) — the autoscaler's
    #: core-demand signal, summed from the replayed stage plans
    busy_ns: Dict[int, float] = field(default_factory=dict)


class ScaleCluster:
    """N sharded chain replicas with migration and elastic repartitioning."""

    def __init__(
        self,
        chain_factory: ChainFactory,
        platform: str = "bess",
        replicas: int = 1,
        speedybox: bool = True,
        speedybox_kwargs: Optional[dict] = None,
        config: Optional[PlatformConfig] = None,
        physical_cores: Optional[int] = None,
        buckets: int = 64,
        metrics: MetricsRegistry = NULL_REGISTRY,
        tracer: PacketTracer = NULL_TRACER,
        audit: AuditLog = NULL_AUDIT,
        spans: Optional[FlowSpanRecorder] = None,
        timeseries=None,
        forensics=None,
    ):
        if platform not in PLATFORM_CLASSES:
            raise ValueError(f"unknown platform {platform!r} (bess|onvm)")
        if replicas <= 0:
            raise ValueError(f"cluster needs at least one replica, got {replicas!r}")
        self.chain_factory = chain_factory
        self.platform_name = platform
        self.speedybox = speedybox
        self.speedybox_kwargs = dict(speedybox_kwargs or {})
        self.config = config
        self.physical_cores = physical_cores
        self.metrics = metrics
        self.tracer = tracer
        self.audit = audit
        #: shared by every replica's platform — flows are sampled across
        #: the whole cluster, not per replica
        self.spans = spans
        #: optional :class:`repro.obs.timeseries.TimeSeries` pumped per
        #: dispatch inside :meth:`run_load` — unlike the platform-level
        #: post-run ingestion, windows close *mid-run* here, which is
        #: what lets the health model flag a replica as degraded while
        #: the window that doomed it is still in flight
        self.timeseries = timeseries
        #: optional :class:`repro.obs.forensics.ForensicsEngine`.  The
        #: dispatch loop captures per-packet flow ids / fast flags /
        #: transfer overhead, and each replica's finished replay is
        #: decomposed post-run; replica platforms share the same engine
        #: so :meth:`run_load_batch` (which delegates to platform
        #: ``run_load``) is covered too.
        self.forensics = forensics
        #: per-replica fast-path counter watermarks for the pump
        self._ts_fast_prev: Dict[int, int] = {}
        self.replicas: Dict[int, ChainReplica] = {}
        self._next_id = 0
        for __ in range(replicas):
            self._spawn_replica()
        self.sharder = FlowSharder(
            {rid: 1.0 for rid in self.replicas}, buckets=buckets
        )
        self.migrator = FlowMigrator(metrics=metrics, tracer=tracer, audit=audit)
        #: canonical five-tuple -> buffered packets (flow is mid-migration);
        #: all wire directions of one frozen flow share one buffer list
        self._frozen: Dict[FiveTuple, List[Packet]] = {}
        #: frozen flow's primary key -> every canonical key in its group
        self._freeze_groups: Dict[FiveTuple, List[FiveTuple]] = {}
        #: canonical five-tuple -> replica currently holding its state
        self._flow_homes: Dict[FiveTuple, int] = {}
        self.packets_buffered = 0
        #: set by :class:`repro.ft.failover.FaultTolerance` when attached —
        #: the cluster then routes every dispatch through its fault hooks
        self.ft = None
        self._placement_listeners: List[Callable[[str], None]] = []
        self._m_replicas = metrics.gauge(
            "cluster_replicas", "chain replicas currently running"
        )
        self._m_buffered = metrics.counter(
            "migration_buffered_packets_total", "packets buffered during flow freezes"
        )
        self._m_replicas.set(len(self.replicas))

    # -- replica lifecycle ----------------------------------------------------

    def _spawn_replica(self) -> int:
        rid = self._next_id
        self._next_id += 1
        nfs = list(self.chain_factory())
        runtime: Union[ServiceChain, SpeedyBox]
        if self.speedybox:
            runtime = SpeedyBox(
                nfs, metrics=self.metrics, audit=self.audit, **self.speedybox_kwargs
            )
        else:
            runtime = ServiceChain(nfs, metrics=self.metrics)
        platform_cls = PLATFORM_CLASSES[self.platform_name]
        platform = platform_cls(
            runtime,
            config=self.config,
            metrics=self.metrics,
            tracer=self.tracer,
            label=f"{platform_cls.name}:r{rid}",
            spans=self.spans,
            forensics=self.forensics,
        )
        self.replicas[rid] = ChainReplica(replica_id=rid, platform=platform)
        return rid

    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def replica(self, replica_id: int) -> ChainReplica:
        return self.replicas[replica_id]

    # -- dispatch -------------------------------------------------------------

    def home_of(self, flow: FiveTuple) -> int:
        """The replica holding this flow's state right now."""
        key = flow.canonical()
        home = self._flow_homes.get(key)
        if home is not None:
            return home
        return self.sharder.replica_for(key)

    def process(self, packet: Packet) -> Optional[PacketOutcome]:
        """Dispatch one packet to its flow's replica (unloaded mode).

        Returns ``None`` when the packet cannot be processed *yet*: the
        flow is frozen mid-migration (buffered, replayed on the target
        when the migration completes) or its home replica is dead
        (buffered by the fault-tolerance coordinator, delivered in order
        when failover completes).
        """
        if self.ft is not None:
            self.ft.tick(packet)
        key = packet.five_tuple().canonical()
        buffer = self._frozen.get(key)
        if buffer is not None:
            buffer.append(packet)
            self.packets_buffered += 1
            self._m_buffered.inc()
            self.audit.emit("migration_buffer", flow=str(key), buffered=len(buffer))
            return None
        rid = self.home_of(key)
        if self.ft is not None and self.ft.is_dead(rid):
            # Don't record a home: a *new* flow hashed onto the dead
            # replica gets a fresh home after the sharder rebalances.
            self.ft.buffer_packet(rid, packet)
            return None
        self._flow_homes[key] = rid
        if self.ft is not None:
            self.ft.note_dispatch(packet, key, rid)
        outcome = self.replicas[rid].platform.process(packet)
        self._note_egress(packet, key, rid)
        return outcome

    def _note_egress(self, packet: Packet, ingress_key: FiveTuple, rid: int) -> None:
        """Keep a rewritten connection's return traffic on this replica.

        When the chain rewrites the five-tuple (NAT, LB), the peer's
        replies arrive addressed to the *translated* endpoint — a tuple
        that hashes to an arbitrary bucket.  Pin its canonical key to the
        replica holding the translation state.
        """
        egress_key = packet.five_tuple().canonical()
        if egress_key == ingress_key:
            return
        self._flow_homes.setdefault(egress_key, rid)
        if self.sharder.replica_for(egress_key) != rid:
            self.sharder.pin(egress_key, rid)

    def process_all(self, packets: Sequence[Packet]) -> List[Optional[PacketOutcome]]:
        return [self.process(packet) for packet in packets]

    # -- loaded mode: all replicas on one engine ------------------------------

    def run_load(
        self, packets: Sequence[Packet], inter_arrival_ns: float = 0.0
    ) -> ClusterLoadResult:
        """Two-phase loaded run across every replica on a shared engine.

        The functional pass shards and processes packets in global
        arrival order; the temporal pass replays each replica's stage
        plans concurrently on one engine, with arrival gaps preserving
        the *global* offered timeline.  With ``physical_cores`` set, all
        replicas' stage workers contend for that core pool.
        """
        if self._frozen:
            raise MigrationError(
                f"cannot run load with {len(self._frozen)} flow(s) frozen mid-migration"
            )
        # A fault injected mid-window removes a replica from self.replicas;
        # its pre-kill packets must still count in the timing replay, so
        # the window's participant set is fixed up front (recovery never
        # spawns new replicas, it re-homes onto survivors).
        participants = dict(self.replicas)
        plans: Dict[int, list] = {rid: [] for rid in participants}
        gaps: Dict[int, List[float]] = {rid: [] for rid in participants}
        dropped: Dict[int, int] = {rid: 0 for rid in participants}
        last_arrival: Dict[int, float] = {}
        timeseries = self.timeseries
        forensics = self.forensics
        forensics_on = forensics is not None and forensics.enabled
        #: per-replica (fids, fast_flags, transfers) aligned with plans
        captures: Optional[Dict[int, tuple]] = (
            {rid: ([], [], []) for rid in participants} if forensics_on else None
        )
        for index, packet in enumerate(packets):
            arrival = index * inter_arrival_ns
            if self.ft is not None:
                self.ft.tick(packet)
            key = packet.five_tuple().canonical()
            rid = self.home_of(key)
            if self.ft is not None and self.ft.is_dead(rid):
                # Buffered against the dead replica: delivered (and its
                # outcome counted) by recovery, outside this timing run.
                # The arrival stamp lets recovery charge the stall from
                # this packet's offered time to its delivery.
                self.ft.buffer_packet(rid, packet, arrival_ns=arrival)
                if timeseries is not None:
                    timeseries.record(arrival, None, replica=rid, buffered=True)
                continue
            self._flow_homes[key] = rid
            if self.ft is not None:
                self.ft.note_dispatch(packet, key, rid)
            platform = self.replicas[rid].platform
            outcome = platform.process(packet)
            self._note_egress(packet, key, rid)
            plan = platform._stage_plan(outcome.report)
            plans[rid].append(plan)
            gaps[rid].append(arrival - last_arrival.get(rid, 0.0))
            last_arrival[rid] = arrival
            if captures is not None:
                report = outcome.report
                capture = captures[rid]
                capture[0].append(report.fid)
                capture[1].append(report.is_fast)
                capture[2].append(platform._plan_transfer_ns(report))
            if outcome.dropped:
                dropped[rid] += 1
            if timeseries is not None:
                # Dispatch-time latency signal: the packet's requested
                # service time (stage-plan sum).  The queued end-to-end
                # latency only exists after the temporal replay, but the
                # window must close *now* for degraded-before-dead
                # detection — service time is the deterministic
                # per-packet component of it.
                runtime = platform.runtime
                fast_now = getattr(runtime, "fast_packets", 0)
                fast_hit = fast_now > self._ts_fast_prev.get(rid, 0)
                self._ts_fast_prev[rid] = fast_now
                timeseries.record(
                    arrival,
                    sum(service for __, service in plan),
                    replica=rid,
                    dropped=outcome.dropped,
                    fast_hit=fast_hit,
                )
        if timeseries is not None:
            # Close the trailing window at run end: arrival clocks restart
            # at zero each window run, so windows never span run_load calls.
            timeseries.finish()

        # Without a shared core pool the replicas' pipelines are fully
        # independent — each replays exactly as it would on a private
        # engine, so when every replica's plans admit the closed-form
        # recursion the whole cluster run does too (same per-replica
        # numbers, one O(hops) loop each instead of a shared event loop).
        analytic = self.physical_cores is None and all(
            replica.platform._analytic_valid(plans[rid])
            for rid, replica in participants.items()
        )
        if analytic:
            runs = {}
            for rid, replica in participants.items():
                platform = replica.platform
                arrival_at, completions = analytic_replay(
                    plans[rid],
                    gaps[rid],
                    platform._stage_count(),
                    platform.config.ring_capacity,
                )
                runs[rid] = PipelineRun(
                    rings=[], arrival_at=arrival_at, completions=completions
                )
        else:
            engine = Engine()
            any_platform = next(iter(participants.values())).platform
            any_platform._attach_observer(engine)
            core_pool = None
            if self.physical_cores is not None:
                core_pool = Resource(engine, capacity=self.physical_cores, name="cores")
            runs = {
                rid: replica.platform._spawn_pipeline(
                    engine, plans[rid], gaps[rid], core_pool=core_pool
                )
                for rid, replica in participants.items()
            }
            engine.run()

        per_replica: Dict[int, LoadResult] = {}
        busy_ns: Dict[int, float] = {}
        for rid, run in runs.items():
            if not analytic:
                participants[rid].platform._publish_load_metrics(run.rings)
            per_replica[rid] = run.to_load_result(
                offered=len(plans[rid]), dropped=dropped[rid]
            )
            busy_ns[rid] = sum(
                service for plan in plans[rid] for __, service in plan
            )
        if captures is not None:
            lane = "analytic" if analytic else "des"
            for rid, run in runs.items():
                fids, fast_flags, transfers = captures[rid]
                forensics.observe_run(
                    participants[rid].platform,
                    plans[rid],
                    run.arrival_at,
                    run.completions,
                    replica=rid,
                    lane=lane,
                    fids=fids or None,
                    transfers=transfers or None,
                    fast_flags=fast_flags or None,
                )
        total = LoadResult.merged(list(per_replica.values()))
        return ClusterLoadResult(total=total, per_replica=per_replica, busy_ns=busy_ns)

    def run_load_batch(self, batch) -> ClusterLoadResult:
        """Shard a columnar :class:`~repro.traffic.columnar.PacketBatch`
        across the replicas and run every sub-batch, one loaded window.

        The columnar analogue of :meth:`run_load`: the sharding unit is
        the *flow* (``home_of`` on each flow's canonical five-tuple, the
        same mapping the per-packet dispatcher uses), each replica gets
        a self-contained sub-batch (:meth:`PacketBatch.select_flows`,
        packet order preserved), and each replica's platform runs it —
        down the whole-batch lane when that platform is eligible.  With
        back-to-back arrivals the per-replica results are exactly what
        the per-packet window would have produced, which is why no
        ``inter_arrival_ns`` parameter exists here: a global arrival
        timeline cannot be cut into self-contained sub-batches.

        Not supported (both need per-packet hooks): flows frozen
        mid-migration, and fault tolerance (checkpoint ticking, dead-
        replica buffering).  ``busy_ns`` is empty — the per-replica
        stage plans live inside each platform's run, not here.
        """
        if self._frozen:
            raise MigrationError(
                f"cannot run load with {len(self._frozen)} flow(s) frozen mid-migration"
            )
        if self.ft is not None:
            raise MigrationError(
                "fault tolerance needs the per-packet window; use run_load"
            )
        flows_by_rid: Dict[int, List[int]] = {rid: [] for rid in self.replicas}
        five_tuple_of = batch.five_tuple_of
        for flow in range(batch.flow_count):
            rid = self.home_of(five_tuple_of(flow))
            flows_by_rid[rid].append(flow)
        per_replica: Dict[int, LoadResult] = {}
        for rid, flow_ids in flows_by_rid.items():
            sub_batch = batch.select_flows(flow_ids)
            per_replica[rid] = self.replicas[rid].platform.run_load(sub_batch)
        total = LoadResult.merged(list(per_replica.values()))
        return ClusterLoadResult(total=total, per_replica=per_replica, busy_ns={})

    # -- migration choreography -----------------------------------------------

    def begin_migration(self, flow: FiveTuple) -> FiveTuple:
        """Freeze the flow at the sharder; its packets buffer from now on.

        Freezing covers every wire direction of the connection — for a
        NAT'd flow that includes the translated return tuple — and all
        of them share one buffer so replay preserves arrival order.
        """
        key = flow.canonical()
        if key in self._frozen:
            raise MigrationError(f"flow {flow} is already frozen")
        home = self.home_of(key)
        if home not in self.replicas:
            raise MigrationError(
                f"flow {flow} is homed on dead replica {home}; recover it first"
            )
        src_nfs = self.replicas[home].runtime.nfs
        group: List[FiveTuple] = []
        for direction in wire_directions(src_nfs, key):
            canonical = direction.canonical()
            if canonical not in group:
                group.append(canonical)
        buffer: List[Packet] = []
        for member in group:
            if member in self._frozen:
                raise MigrationError(f"flow {member} is already frozen")
            self._frozen[member] = buffer
        self._freeze_groups[key] = group
        self.audit.emit(
            "migration_freeze",
            flow=str(key),
            directions=[str(member) for member in group],
        )
        return key

    def complete_migration(
        self, flow: FiveTuple, dst_replica_id: int, pin: bool = True
    ) -> Tuple[Optional[MigrationReport], List[PacketOutcome]]:
        """Transfer the frozen flow's state, then replay its buffer.

        Returns the migration report (``None`` if the flow was already
        home) and the outcomes of the replayed packets — exactly one per
        buffered packet: zero loss by construction.
        """
        key = flow.canonical()
        group = self._freeze_groups.pop(key, None)
        if group is None:
            raise MigrationError(f"flow {flow} is not frozen; call begin_migration first")
        if dst_replica_id not in self.replicas:
            self._freeze_groups[key] = group
            raise MigrationError(f"unknown replica {dst_replica_id!r}")
        src_rid = self.home_of(key)
        if src_rid not in self.replicas:
            # Unreachable through the public flow: a kill absorbs the
            # freeze buffers of the dead replica's frozen flows, so this
            # group would already be gone.  Guard anyway.
            self._freeze_groups[key] = group
            raise MigrationError(
                f"flow {flow} is homed on dead replica {src_rid}; recover it first"
            )
        # The buffer is complete before the transfer starts — the flow is
        # frozen and the model single-threaded — so the migrator's audit
        # record can carry the exact replay count.
        buffered = self._frozen[key]
        report: Optional[MigrationReport] = None
        if src_rid != dst_replica_id:
            report = self.migrator.migrate(
                self.replicas[src_rid].runtime,
                self.replicas[dst_replica_id].runtime,
                key,
                replayed=len(buffered),
            )
        for member in group:
            del self._frozen[member]
            if member in self._flow_homes or member == key:
                self._flow_homes[member] = dst_replica_id
            # Secondary keys (translated return tuples) must always stay
            # with the state that translates them; only the primary key's
            # table override is the caller's choice.
            if pin or member != key:
                if self.sharder.replica_for(member) != dst_replica_id:
                    self.sharder.pin(member, dst_replica_id)
        outcomes = []
        for packet in buffered:
            ingress = packet.five_tuple().canonical()
            outcome = self.replicas[dst_replica_id].platform.process(packet)
            self._note_egress(packet, ingress, dst_replica_id)
            outcomes.append(outcome)
        self.audit.emit(
            "migration_replay",
            flow=str(key),
            src=src_rid,
            dst=dst_replica_id,
            buffered=len(buffered),
            replayed=len(outcomes),
            moved=report is not None,
        )
        if self.ft is not None and report is not None:
            # The flow's checkpoint still points at the source replica —
            # and the freeze-buffer replays above bypassed the input log.
            # Re-snapshot on the destination so a failure there recovers
            # the post-migration state.
            self.ft.on_flow_migrated(key, src_rid, dst_replica_id)
        return report, outcomes

    def migrate_flow(
        self, flow: FiveTuple, dst_replica_id: int, pin: bool = True
    ) -> Optional[MigrationReport]:
        """Freeze + transfer + resume in one call (no traffic in between)."""
        self.begin_migration(flow)
        report, __ = self.complete_migration(flow, dst_replica_id, pin=pin)
        return report

    def churn_flows(self, count: int, seed: int = 0) -> List[MigrationReport]:
        """Forcibly re-home ``count`` live flows (migration-churn ablation).

        Deterministic: flows are chosen by seeded sample over the sorted
        live-flow set, each moved to the next replica id round-robin.
        """
        import random

        live = sorted(self._flow_homes)
        if not live or len(self.replicas) < 2:
            return []
        rng = random.Random(seed)
        chosen = rng.sample(live, min(count, len(live)))
        rids = sorted(self.replicas)
        reports = []
        for key in chosen:
            home = self._flow_homes[key]
            dst = rids[(rids.index(home) + 1) % len(rids)]
            report = self.migrate_flow(key, dst)
            if report is not None:
                reports.append(report)
        return reports

    # -- elasticity (used by the autoscaler) ----------------------------------

    def scale_out(self, weight: float = 1.0, rebalance: bool = True) -> int:
        """Add a replica; repartition and migrate the moved buckets' flows."""
        rid = self._spawn_replica()
        # rebalance=False joins with zero buckets — the equivalence
        # oracle uses this to add an empty replica and migrate one flow
        # onto it by pin, isolating migration from resharding effects.
        self.sharder.add_replica(rid, weight, rebalance=rebalance)
        if rebalance:
            self._migrate_rehomed_flows()
        self._m_replicas.set(len(self.replicas))
        self.audit.emit("scale_out", replica=rid, replicas=len(self.replicas))
        self.notify_placement("scale_out")
        return rid

    def scale_in(self) -> int:
        """Retire the highest-id replica, migrating its flows away first."""
        if len(self.replicas) <= 1:
            raise MigrationError("cannot scale in below one replica")
        rid = max(self.replicas)
        self.sharder.remove_replica(rid)
        self._migrate_rehomed_flows()
        remaining = [home for home in self._flow_homes.values() if home == rid]
        if remaining:
            raise MigrationError(
                f"replica {rid} still homes {len(remaining)} flow(s) after drain"
            )
        del self.replicas[rid]
        self._m_replicas.set(len(self.replicas))
        self.audit.emit("scale_in", replica=rid, replicas=len(self.replicas))
        self.notify_placement("scale_in")
        return rid

    def _migrate_rehomed_flows(self) -> List[MigrationReport]:
        """Move every live flow whose sharder target no longer matches home."""
        reports = []
        for key in sorted(self._flow_homes):
            target = self.sharder.replica_for(key)
            if target != self._flow_homes[key]:
                report = self.migrate_flow(key, target, pin=False)
                if report is not None:
                    reports.append(report)
        return reports

    # -- placement events -----------------------------------------------------

    def add_placement_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe to placement changes made outside the autoscaler.

        A failover re-homes flows exactly like a scaling action does, so
        the autoscaler subscribes here to restart its cooldown — without
        this, it could pile a scale decision onto a cluster still
        settling from recovery.
        """
        self._placement_listeners.append(listener)

    def notify_placement(self, kind: str) -> None:
        for listener in self._placement_listeners:
            listener(kind)

    # -- introspection --------------------------------------------------------

    def flow_homes(self) -> Dict[FiveTuple, int]:
        return dict(self._flow_homes)

    def reset(self) -> None:
        for replica in self.replicas.values():
            replica.platform.reset()
        self._frozen.clear()
        self._freeze_groups.clear()
        self._flow_homes.clear()
        self._ts_fast_prev.clear()
        self.packets_buffered = 0

    def __repr__(self) -> str:
        return (
            f"<ScaleCluster {self.platform_name} x{len(self.replicas)} "
            f"({'speedybox' if self.speedybox else 'original'}), "
            f"{len(self._flow_homes)} live flows>"
        )
