"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Run traffic through a chain with and without SpeedyBox and print a
    latency/throughput summary.

``sweep``
    Chain-length sweep (a live Figure 8) on a chosen platform.

``equivalence``
    Drive baseline and SpeedyBox in lockstep over a synthetic trace and
    report any output mismatch (exit code 1 if any).

``trace``
    Generate a synthetic datacenter trace to a ``.sbtr`` file, or print a
    summary of an existing one.

``obs report``
    Render a text dashboard (top flows by latency, SLO attainment, cycle
    attribution, audit summary, metrics, telemetry windows) from the
    artifacts another command wrote via ``--metrics-json``/
    ``--metrics-prom``, ``--span-out``, ``--audit-out`` and
    ``--timeseries-out``.

``obs watch``
    Render the per-window telemetry table from a ``--timeseries-out``
    artifact, with the health transitions and SLO burn alerts from the
    matching ``--audit-out`` file when given.

``obs diff``
    Compare two sets of ``BENCH_*.json`` results (files or directories)
    direction-aware and exit 1 on regressions — the CI bench gate.

``obs explain``
    Tail-latency forensics: render the worst-K packet table with its
    queue/service/transfer/stall decomposition, the stall charges, the
    regime shifts and the unified causal timeline from a
    ``--forensics-out`` artifact (joined with ``--audit`` / ``--spans``
    / ``--windows`` artifacts when given).

``ft demo`` / ``ft report``
    Kill a replica mid-stream under checkpointed fault tolerance and
    prove the recovery was loss-free (``demo``); render the recovery
    post-mortem (failure timeline, per-failover table, checkpoint
    cadence) from a run's audit/metrics artifacts (``report``).

Chain specs are comma-separated NF names, e.g. ``--chain
nat,maglev,monitor,firewall``.  Each name may repeat; instances are
numbered.  Run ``python -m repro demo --list-nfs`` to see the catalogue.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    MaglevLoadBalancer,
    MazuNAT,
    Monitor,
    SnortIDS,
    SyntheticNF,
    TokenBucketPolicer,
    VniMap,
    VpnDecap,
    VpnEncap,
    VxlanGateway,
    VxlanTerminator,
)
from repro.nf.base import NetworkFunction
from repro.obs import (
    AuditLog,
    FlowSpanRecorder,
    ForensicsEngine,
    HealthModel,
    MetricsRegistry,
    NULL_AUDIT,
    NULL_REGISTRY,
    NULL_TRACER,
    PacketTracer,
    SLOEngine,
    TimeSeries,
)
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.stats import Distribution, format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator
from repro.traffic.generator import clone_packets

DEFAULT_RULES = """
alert tcp any any -> any any (msg:"demo exploit"; content:"exploit"; sid:1;)
log tcp any any -> any any (msg:"demo http"; content:"GET /"; sid:2;)
"""

NF_CATALOGUE: Dict[str, Callable[[int], NetworkFunction]] = {
    "nat": lambda i: MazuNAT(f"nat{i}"),
    "maglev": lambda i: MaglevLoadBalancer(f"maglev{i}", table_size=131),
    "monitor": lambda i: Monitor(f"monitor{i}"),
    "firewall": lambda i: IPFilter(f"firewall{i}"),
    "snort": lambda i: SnortIDS(f"snort{i}", DEFAULT_RULES),
    "dos": lambda i: DosPrevention(f"dos{i}", threshold=1000, mode="packets"),
    "vpn-encap": lambda i: VpnEncap(f"vpnenc{i}"),
    "vpn-decap": lambda i: VpnDecap(f"vpndec{i}"),
    "gateway": lambda i: VxlanGateway(f"gateway{i}", VniMap([("0.0.0.0/0", 100 + i)])),
    "terminator": lambda i: VxlanTerminator(f"terminator{i}"),
    "synthetic": lambda i: SyntheticNF(f"synthetic{i}"),
    "policer": lambda i: TokenBucketPolicer(f"policer{i}", rate_pps=1e6, burst=64),
}


def build_chain(spec: str) -> List[NetworkFunction]:
    nfs: List[NetworkFunction] = []
    for index, name in enumerate(part.strip() for part in spec.split(",")):
        if not name:
            continue
        factory = NF_CATALOGUE.get(name)
        if factory is None:
            raise SystemExit(
                f"unknown NF {name!r}; available: {', '.join(sorted(NF_CATALOGUE))}"
            )
        nfs.append(factory(index))
    if not nfs:
        raise SystemExit("empty chain spec")
    return nfs


def build_platform(
    name: str, runtime, metrics=NULL_REGISTRY, tracer=NULL_TRACER, spans=None,
    timeseries=None, forensics=None,
):
    if name == "bess":
        return BessPlatform(
            runtime, metrics=metrics, tracer=tracer, spans=spans,
            timeseries=timeseries, forensics=forensics,
        )
    if name == "onvm":
        return OpenNetVMPlatform(
            runtime, metrics=metrics, tracer=tracer, spans=spans,
            timeseries=timeseries, forensics=forensics,
        )
    raise SystemExit(f"unknown platform {name!r} (bess|onvm)")


@dataclass
class ObsBundle:
    """The observability surfaces one command run shares."""

    metrics: MetricsRegistry = NULL_REGISTRY
    tracer: PacketTracer = NULL_TRACER
    audit: AuditLog = NULL_AUDIT
    spans: Optional[FlowSpanRecorder] = None
    timeseries: Optional[TimeSeries] = None
    health: Optional[HealthModel] = None
    slo: Optional[SLOEngine] = None
    forensics: Optional[ForensicsEngine] = None

    def speedybox_kwargs(self) -> dict:
        """Keyword arguments for a SpeedyBox runtime built from this bundle."""
        return {"metrics": self.metrics, "audit": self.audit}


def make_observability(args) -> ObsBundle:
    """The observability bundle, each surface real only when a flag asks.

    ``--metrics-json``/``--metrics-prom`` enable the registry,
    ``--trace-out`` the packet tracer, ``--audit-out`` the decision audit
    log, ``--span-out`` the 1-in-N flow span sampler (ratio from
    ``--span-every``), ``--timeseries-out``/``--slo`` the windowed
    telemetry layer (window clock from ``--window-ns`` or
    ``--window-packets``) with its health model and SLO engine, and
    ``--forensics-out`` the tail-latency forensics engine (worst-K from
    ``--worst-k``, regime-shift detector attached to the telemetry
    windows when those are on too).
    """
    want_metrics = getattr(args, "metrics_json", None) or getattr(args, "metrics_prom", None)
    metrics = MetricsRegistry() if want_metrics else NULL_REGISTRY
    tracer = PacketTracer() if getattr(args, "trace_out", None) else NULL_TRACER
    audit = AuditLog() if getattr(args, "audit_out", None) else NULL_AUDIT
    spans = None
    if getattr(args, "span_out", None):
        spans = FlowSpanRecorder(every=max(1, getattr(args, "span_every", 64)))
    timeseries = health = slo = None
    slo_specs = getattr(args, "slo", None)
    if getattr(args, "timeseries_out", None) or slo_specs:
        window_packets = getattr(args, "window_packets", None)
        if window_packets:
            timeseries = TimeSeries(window_packets=window_packets, registry=metrics)
        else:
            timeseries = TimeSeries(
                window_ns=getattr(args, "window_ns", None) or 1_000_000.0,
                registry=metrics,
            )
        health = HealthModel(timeseries=timeseries, audit=audit)
        if slo_specs:
            slo = SLOEngine.from_specs(slo_specs, timeseries=timeseries, audit=audit)
    forensics = None
    if getattr(args, "forensics_out", None):
        forensics = ForensicsEngine(
            worst_k=max(1, getattr(args, "worst_k", None) or 8), audit=audit
        )
        if timeseries is not None:
            # Telemetry windows double as a second regime-shift signal:
            # the detector sees every closing window, not just the
            # forensics engine's own arrival-order windows.
            forensics.detector.attach(timeseries)
    return ObsBundle(
        metrics=metrics,
        tracer=tracer,
        audit=audit,
        spans=spans,
        timeseries=timeseries,
        health=health,
        slo=slo,
        forensics=forensics,
    )


def emit_observability(args, obs: ObsBundle) -> None:
    """Write the artifact files the command's observability flags asked for."""
    import json

    metrics, tracer, audit, spans = obs.metrics, obs.tracer, obs.audit, obs.spans
    if getattr(args, "metrics_json", None):
        payload = json.dumps(metrics.snapshot(), indent=2, sort_keys=True)
        if args.metrics_json == "-":
            print(payload)
        else:
            with open(args.metrics_json, "w") as handle:
                handle.write(payload + "\n")
            print(f"wrote {len(metrics.snapshot())} metric series to {args.metrics_json}")
    if getattr(args, "metrics_prom", None):
        from repro.obs import render_prometheus, write_prometheus

        if args.metrics_prom == "-":
            print(render_prometheus(metrics), end="")
        else:
            count = write_prometheus(metrics, args.metrics_prom)
            print(f"wrote {count} Prometheus samples to {args.metrics_prom}")
    if getattr(args, "audit_out", None):
        count = audit.write_jsonl(args.audit_out)
        print(f"wrote {count} audit events to {args.audit_out}")
    if spans is not None and getattr(args, "span_out", None):
        count = spans.write_jsonl(args.span_out)
        summary = spans.summary()
        print(f"wrote {count} flow spans to {args.span_out} "
              f"(1-in-{spans.every}: {summary['flows_sampled']}/{summary['flows_seen']} "
              f"flows, {summary['packets_sampled']} packets)")
    if getattr(args, "trace_out", None):
        if spans is not None:
            spans.replay_into(tracer)
        count = tracer.write_chrome(args.trace_out)
        print(f"wrote {count} trace events to {args.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    timeseries, health, slo = obs.timeseries, obs.health, obs.slo
    if timeseries is not None and getattr(args, "timeseries_out", None):
        timeseries.finish()
        count = timeseries.write_jsonl(args.timeseries_out)
        print(f"wrote {count} telemetry windows to {args.timeseries_out}")
    if obs.forensics is not None and getattr(args, "forensics_out", None):
        count = obs.forensics.write_jsonl(args.forensics_out)
        summary = obs.forensics.summary()
        print(f"wrote {count} forensics rows to {args.forensics_out} "
              f"({summary['packets']} packets decomposed, "
              f"{summary['stall_records']} stall charges, "
              f"{summary['regime_shifts']} regime shifts)")
    if health is not None and health.snapshot():
        print(f"cluster health: {health.worst_state()}")
    if slo is not None:
        print(slo.render())


def make_trace_packets(flows: int, seed: int, mean_packets: float = 8.0):
    import math

    config = DatacenterTraceConfig(
        flows=flows,
        seed=seed,
        lognormal_mu=max(0.1, math.log(mean_packets)),
    )
    from repro.nf.snort.rules import parse_rules

    specs = DatacenterTraceGenerator(config, parse_rules(DEFAULT_RULES)).generate_flows()
    return TrafficGenerator(specs, interleave="round_robin").packets()


# -- commands -------------------------------------------------------------------


def cmd_demo(args: argparse.Namespace) -> int:
    if args.list_nfs:
        for name in sorted(NF_CATALOGUE):
            print(name)
        return 0

    packets = make_trace_packets(args.flows, args.seed)
    print(f"chain: {args.chain}   platform: {args.platform}   packets: {len(packets)}")

    obs = make_observability(args)
    rows = []
    variants = [("original", ServiceChain)]
    if not args.no_speedybox:
        variants.append(("speedybox", SpeedyBox))
    results = {}
    for label, runtime_cls in variants:
        if runtime_cls is SpeedyBox:
            runtime = SpeedyBox(build_chain(args.chain), **obs.speedybox_kwargs())
        else:
            runtime = ServiceChain(build_chain(args.chain), metrics=obs.metrics)
        platform = build_platform(
            args.platform,
            runtime,
            metrics=obs.metrics,
            tracer=obs.tracer,
            spans=obs.spans,
            timeseries=obs.timeseries,
            forensics=obs.forensics,
        )
        latency = Distribution()
        dropped = 0
        for packet in clone_packets(packets):
            outcome = platform.process(packet)
            latency.add(outcome.latency_us)
            dropped += outcome.dropped
        load = None
        platform.reset()
        load = platform.run_load(clone_packets(packets))
        results[label] = latency
        rows.append(
            [
                label,
                f"{latency.p50:.3f}",
                f"{latency.p99:.3f}",
                f"{load.throughput_mpps:.2f}",
                dropped,
            ]
        )
    print(format_table(["variant", "p50 us", "p99 us", "Mpps", "dropped"], rows))
    if "speedybox" in results:
        reduction = 100 * (1 - results["speedybox"].p50 / results["original"].p50)
        print(f"\np50 latency reduction: {reduction:.1f}%")
    emit_observability(args, obs)
    if args.dump_rules and not args.no_speedybox:
        # Re-run once to leave the runtime populated, then dump its MAT.
        # FIN packets are withheld so the rules survive for inspection.
        from repro.core.inspector import dump_global_mat
        from repro.net.headers import TCP_FIN, TCPHeader

        runtime = SpeedyBox(build_chain(args.chain))
        for packet in clone_packets(packets):
            if isinstance(packet.l4, TCPHeader) and packet.l4.has_flag(TCP_FIN):
                continue
            runtime.process(packet)
        print("\n" + dump_global_mat(runtime, limit=args.dump_rules))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    packets = make_trace_packets(args.flows, args.seed)
    max_len = args.max_length
    if args.platform == "onvm":
        max_len = min(max_len, OpenNetVMPlatform.MAX_CHAIN_LENGTH)
    obs = make_observability(args)
    rows = []
    for n in range(1, max_len + 1):
        row = [n]
        for runtime_cls in (ServiceChain, SpeedyBox):
            chain = [IPFilter(f"fw{i}") for i in range(n)]
            if runtime_cls is SpeedyBox:
                runtime = SpeedyBox(chain, **obs.speedybox_kwargs())
            else:
                runtime = ServiceChain(chain, metrics=obs.metrics)
            platform = build_platform(
                args.platform, runtime,
                metrics=obs.metrics, tracer=obs.tracer, spans=obs.spans,
            )
            outcomes = platform.process_all(clone_packets(packets))
            if obs.forensics is not None:
                obs.forensics.observe_outcomes(
                    platform, outcomes, replica=f"{runtime_cls.__name__}:n={n}"
                )
            latency = Distribution([o.latency_us for o in outcomes])
            row.append(f"{latency.p50:.3f}")
        rows.append(row)
    print(format_table(
        ["chain length", "original p50 us", "speedybox p50 us"],
        rows,
        title=f"latency vs chain length on {args.platform}",
    ))
    emit_observability(args, obs)
    return 0


def cmd_equivalence(args: argparse.Namespace) -> int:
    packets = make_trace_packets(args.flows, args.seed)
    baseline = ServiceChain(build_chain(args.chain))
    speedybox = SpeedyBox(build_chain(args.chain))
    base_stream = clone_packets(packets)
    sbox_stream = clone_packets(packets)
    for packet in base_stream:
        baseline.process(packet)
    for packet in sbox_stream:
        speedybox.process(packet)

    mismatches = 0
    for index, (a, b) in enumerate(zip(base_stream, sbox_stream)):
        if a.dropped != b.dropped or (not a.dropped and a.serialize() != b.serialize()):
            mismatches += 1
            if mismatches <= 5:
                print(f"MISMATCH at packet {index}: {a!r} vs {b!r}")
    total = len(packets)
    print(f"{total} packets, {mismatches} mismatches; "
          f"fast path served {speedybox.fast_packets}/{total}")
    return 1 if mismatches else 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Columnar batch run down the whole-batch lane, optionally compared
    leg for leg against the per-packet oracle."""
    import time as _time

    from repro.core.actions import Modify
    from repro.platform.base import PlatformConfig
    from repro.traffic.columnar import uniform_batch

    def batch_chain():
        # Steady-compilable header-rewrite chain: no state functions, so
        # flows compile and the lane's bulk admission engages.  The
        # catalogue chains keep per-flow state and would pin every
        # packet to the scalar fallback — correct, but not a batch demo.
        return [
            SyntheticNF("fw", action=Modify.ttl_dec(), sf_payload_class=None),
            SyntheticNF("nat", action=Modify.set(dst_port=8080), sf_payload_class=None),
            SyntheticNF("mon", sf_payload_class=None),
        ]

    batch = uniform_batch(
        args.flows,
        args.packets_per_flow,
        interleave="round_robin",
        block=args.block,
    )
    total = len(batch)
    print(
        f"batch: {total} packets, {args.flows} flows x {args.packets_per_flow} "
        f"packets, {args.block} concurrently live, flow table capacity {args.table}"
    )

    forensics = None
    if args.forensics_out:
        forensics = ForensicsEngine(worst_k=max(1, args.worst_k or 8))

    def run_leg(batch_lane, forensics=None):
        runtime = SpeedyBox(
            batch_chain(), max_tracked_flows=args.table, max_flows=args.table
        )
        platform_cls = BessPlatform if args.platform == "bess" else OpenNetVMPlatform
        platform = platform_cls(
            runtime, config=PlatformConfig(batch_lane=batch_lane), forensics=forensics
        )
        load = batch if batch_lane else batch.packet_view()
        started = _time.perf_counter()
        result = platform.run_load(load)
        return _time.perf_counter() - started, result, runtime

    # Forensics rides only the measured leg; the post-run decomposition
    # runs inside the timed window, so the wallclock column includes it
    # when --forensics-out is given.
    lane_s, lane_result, lane_runtime = run_leg(
        batch_lane=not args.no_batch_lane, forensics=forensics
    )
    stats = lane_runtime.stats()
    rows = [
        [
            "batch lane" if not args.no_batch_lane else "per-packet",
            f"{lane_s:.2f}",
            f"{lane_s / total * 1e6:.2f}",
            f"{total / lane_s / 1e6:.2f}",
            stats["fast_packets"],
            stats["classifier_evictions"],
        ]
    ]
    if args.compare and not args.no_batch_lane:
        legacy_s, legacy_result, legacy_runtime = run_leg(batch_lane=False)
        rows.append(
            [
                "per-packet",
                f"{legacy_s:.2f}",
                f"{legacy_s / total * 1e6:.2f}",
                f"{total / legacy_s / 1e6:.2f}",
                legacy_runtime.stats()["fast_packets"],
                legacy_runtime.stats()["classifier_evictions"],
            ]
        )
    print(
        format_table(
            ["leg", "wallclock s", "us/packet", "Mpps", "fast packets", "evictions"],
            rows,
        )
    )
    if forensics is not None:
        count = forensics.write_jsonl(args.forensics_out)
        summary = forensics.summary()
        print(f"wrote {count} forensics rows to {args.forensics_out} "
              f"({summary['packets']} packets decomposed)")
    if args.compare and not args.no_batch_lane:
        same = (
            lane_result.latencies_ns == legacy_result.latencies_ns
            and lane_result.makespan_ns == legacy_result.makespan_ns
            and lane_result.dropped == legacy_result.dropped
            and lane_runtime.stats() == legacy_runtime.stats()
        )
        print(
            f"\nspeedup: {legacy_s / lane_s:.1f}x   "
            f"identical results: {'yes' if same else 'NO'}"
        )
        return 0 if same else 1
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    from repro.net.headers import TCP_FIN, TCPHeader
    from repro.scale import ScaleCluster

    packets = make_trace_packets(args.flows, args.seed)
    obs = make_observability(args)
    platforms = [name.strip() for name in args.platforms.split(",") if name.strip()]
    want_ft = args.checkpoint_every is not None or args.kill_at is not None
    rows = []
    for platform_name in platforms:
        baseline_mpps = None
        for count in range(1, args.replicas + 1):
            cluster = ScaleCluster(
                lambda: build_chain(args.chain),
                platform=platform_name,
                replicas=count,
                speedybox=not args.no_speedybox,
                physical_cores=args.physical_cores,
                metrics=obs.metrics,
                tracer=obs.tracer,
                audit=obs.audit,
                spans=obs.spans,
                timeseries=obs.timeseries,
                forensics=obs.forensics,
            )
            ft = None
            if want_ft:
                from repro.ft import FaultInjector, FaultTolerance

                ft = FaultTolerance(
                    cluster,
                    checkpoint_interval=args.checkpoint_every or 32,
                    # A one-replica row has nothing to fail over onto.
                    injector=FaultInjector(
                        kill_at=args.kill_at if count > 1 else None,
                        recover_after=args.recover_after,
                    ),
                    tracer=obs.tracer,
                    charge_recovery=not args.no_charge_recovery,
                    forensics=obs.forensics,
                )
                if obs.health is not None:
                    # Degraded windows trigger proactive checkpoints
                    # while the struggling replica is still reachable.
                    obs.health.add_listener(ft.on_health)
            migrations = 0
            if args.churn:
                # Establish live flows (FINs withheld so they survive),
                # then forcibly re-home --churn of them before the loaded
                # window: the migration-churn ablation.
                live = [
                    packet
                    for packet in packets
                    if not (isinstance(packet.l4, TCPHeader)
                            and packet.l4.has_flag(TCP_FIN))
                ]
                for packet in clone_packets(live[: len(live) // 2]):
                    cluster.process(packet)
                migrations = len(cluster.churn_flows(args.churn, seed=args.seed))
            result = cluster.run_load(
                clone_packets(packets), inter_arrival_ns=args.gap_ns
            )
            if ft is not None and ft.dead:
                ft.recover_all()
            total = result.total
            if ft is not None and ft.charged:
                # Buffered-during-failover deliveries re-enter the
                # latency population with their stall charged, so the
                # p99 column reflects the outage they sat through.
                total = total.merge(ft.charged_result())
            if baseline_mpps is None:
                baseline_mpps = total.throughput_mpps
            speedup = (
                total.throughput_mpps / baseline_mpps if baseline_mpps else 0.0
            )
            row = [
                platform_name,
                count,
                total.offered,
                total.delivered,
                f"{total.throughput_mpps:.2f}",
                f"{total.latency_percentile(0.99) / 1000.0:.3f}",
                f"{speedup:.2f}x",
                migrations,
            ]
            if want_ft:
                recovered = sum(r.packets_delivered for r in ft.recoveries)
                recovery_ms = sum(r.duration_s for r in ft.recoveries) * 1000.0
                row.extend(
                    [ft.packets_buffered, recovered, f"{recovery_ms:.2f}"]
                )
            rows.append(row)
    headers = ["platform", "replicas", "offered", "delivered", "Mpps", "p99 us",
               "vs 1 replica", "migrations"]
    if want_ft:
        headers.extend(["buffered", "recovered", "rec ms"])
    print(format_table(
        headers,
        rows,
        title=f"replica sweep over chain {args.chain}",
    ))
    emit_observability(args, obs)
    return 0


class _ArtifactError(Exception):
    """An obs artifact could not be loaded (missing, empty, truncated)."""


def _load_artifact(action: str, what: str, loader, path):
    """Load one artifact file; wrap failures in a user-facing message.

    A run interrupted mid-write leaves an empty or truncated JSONL file;
    the obs subcommands report that as one clear line on stderr and exit
    2 instead of dumping a traceback.
    """
    try:
        return loader(path)
    except OSError as exc:
        raise _ArtifactError(
            f"obs {action}: cannot read {what} artifact {path}: "
            f"{exc.strerror or exc}"
        ) from exc
    except ValueError as exc:
        raise _ArtifactError(f"obs {action}: bad {what} artifact: {exc}") from exc


def cmd_obs(args: argparse.Namespace) -> int:
    try:
        return _run_obs(args)
    except _ArtifactError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs.report import load_jsonl, load_metrics, render_report

    if args.action == "diff":
        from repro.obs import collect_benches, diff_benches, render_diff
        from repro.obs.benchdiff import regressions

        if not (args.baseline and args.current):
            print("obs diff: pass --baseline PATH and --current PATH "
                  "(BENCH_*.json files or directories)", file=sys.stderr)
            return 2
        entries = diff_benches(
            collect_benches(args.baseline),
            collect_benches(args.current),
            threshold=args.threshold,
        )
        print(render_diff(entries, show_ok=args.show_ok))
        return 1 if regressions(entries) else 0

    if args.action == "watch":
        from repro.obs import load_timeseries_jsonl, render_windows
        from repro.obs.report import HEALTH_KINDS, SLO_KINDS, render_health_slo

        if not args.windows:
            print("obs watch: pass --windows PATH (a run's --timeseries-out file)",
                  file=sys.stderr)
            return 2
        rows = _load_artifact("watch", "windows", load_timeseries_jsonl, args.windows)
        print(render_windows(rows, title=f"telemetry windows ({args.windows})"))
        if args.audit:
            events = _load_artifact("watch", "audit", load_jsonl, args.audit)
            if any(e.get("kind") in HEALTH_KINDS + SLO_KINDS for e in events):
                print()
                print(render_health_slo(events))
        return 0

    if args.action == "explain":
        from repro.obs import load_timeseries_jsonl
        from repro.obs.forensics import load_forensics_jsonl, render_explain

        if not args.forensics:
            print("obs explain: pass --forensics PATH (a run's --forensics-out "
                  "file); --audit/--spans/--windows join the causal timeline",
                  file=sys.stderr)
            return 2
        data = _load_artifact(
            "explain", "forensics", load_forensics_jsonl, args.forensics
        )
        audit = (
            _load_artifact("explain", "audit", load_jsonl, args.audit)
            if args.audit else None
        )
        spans = (
            _load_artifact("explain", "spans", load_jsonl, args.spans)
            if args.spans else None
        )
        windows = (
            _load_artifact("explain", "windows", load_timeseries_jsonl, args.windows)
            if args.windows else None
        )
        print(render_explain(
            data, audit=audit, spans=spans, windows=windows, top=args.top
        ))
        return 0

    if not (args.metrics or args.spans or args.audit or args.windows
            or args.forensics):
        print("obs report: pass at least one of --metrics, --spans, --audit, "
              "--windows, --forensics", file=sys.stderr)
        return 2
    from repro.obs import load_timeseries_jsonl
    from repro.obs.forensics import load_forensics_jsonl

    metrics = (
        _load_artifact("report", "metrics", load_metrics, args.metrics)
        if args.metrics else None
    )
    spans = (
        _load_artifact("report", "spans", load_jsonl, args.spans)
        if args.spans else None
    )
    audit = (
        _load_artifact("report", "audit", load_jsonl, args.audit)
        if args.audit else None
    )
    windows = (
        _load_artifact("report", "windows", load_timeseries_jsonl, args.windows)
        if args.windows else None
    )
    forensics = (
        _load_artifact("report", "forensics", load_forensics_jsonl, args.forensics)
        if args.forensics else None
    )
    print(render_report(
        metrics=metrics,
        spans=spans,
        audit=audit,
        windows=windows,
        forensics=forensics,
        slo_us=args.slo_us,
        percentile=args.percentile,
        top=args.top,
    ))
    return 0


def cmd_ft(args: argparse.Namespace) -> int:
    if args.action == "report":
        from repro.ft.report import render_ft_report
        from repro.obs.report import load_jsonl, load_metrics

        if not args.audit:
            print("ft report: pass --audit PATH (the run's --audit-out file)",
                  file=sys.stderr)
            return 2
        audit = load_jsonl(args.audit)
        metrics = load_metrics(args.metrics) if args.metrics else None
        print(render_ft_report(audit, metrics=metrics))
        return 0

    # demo: kill a replica mid-stream, recover, prove nothing was lost.
    from repro.ft import FaultInjector, FaultTolerance
    from repro.scale import ScaleCluster

    packets = make_trace_packets(args.flows, args.seed)
    obs = make_observability(args)
    kill_at = args.kill_at if args.kill_at is not None else len(packets) // 2
    cluster = ScaleCluster(
        lambda: build_chain(args.chain),
        platform=args.platform,
        replicas=args.replicas,
        metrics=obs.metrics,
        tracer=obs.tracer,
        audit=obs.audit,
        spans=obs.spans,
        forensics=obs.forensics,
    )
    ft = FaultTolerance(
        cluster,
        checkpoint_interval=args.checkpoint_every,
        injector=FaultInjector(
            kill_at=kill_at,
            replica=args.kill_replica,
            recover_after=args.recover_after,
        ),
        tracer=obs.tracer,
        charge_recovery=not args.no_charge_recovery,
        forensics=obs.forensics,
    )
    print(f"chain: {args.chain}   replicas: {args.replicas}   "
          f"packets: {len(packets)}   kill at: {kill_at}   "
          f"checkpoint every: {args.checkpoint_every}")
    live = sum(
        1 for packet in clone_packets(packets) if cluster.process(packet) is not None
    )
    if ft.dead:
        ft.recover_all()
    delivered = sum(r.packets_delivered for r in ft.recoveries)
    rows = [
        [
            r.replica,
            r.flows_restored,
            r.flows_rebuilt,
            r.packets_replayed,
            r.packets_delivered,
            f"{r.duration_s * 1000.0:.2f}",
            f"{r.stall_charged_ns / 1e6:.2f}",
        ]
        for r in ft.recoveries
    ]
    print(format_table(
        ["killed", "restored", "rebuilt", "replayed", "delivered", "ms", "stall ms"],
        rows,
        title=f"failover of replica {ft.injector.replica}",
    ))
    lost = len(packets) - live - delivered
    print(f"offered {len(packets)}  in-stream {live}  buffered {ft.packets_buffered}  "
          f"recovered {delivered}  lost {lost}")
    print("LOSS-FREE" if lost == 0 else f"LOST {lost} PACKETS")
    emit_observability(args, obs)
    return 0 if lost == 0 else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.net.trace import load_trace, write_trace

    if args.generate:
        packets = make_trace_packets(args.flows, args.seed)
        for index, packet in enumerate(packets):
            packet.timestamp_ns = index * float(args.gap_ns)
        count = write_trace(args.generate, packets)
        print(f"wrote {count} packets to {args.generate}")
        return 0
    if args.inspect:
        packets = load_trace(args.inspect)
        flows = {p.five_tuple() for p in packets}
        total_bytes = sum(p.byte_length() for p in packets)
        print(f"{args.inspect}: {len(packets)} packets, {len(flows)} flows, "
              f"{total_bytes} bytes on the wire")
        return 0
    if args.to_pcap:
        from repro.net.pcap import write_pcap

        source, destination = args.to_pcap
        packets = load_trace(source)
        count = write_pcap(destination, packets)
        print(f"converted {count} packets: {source} -> {destination} (open in Wireshark)")
        return 0
    print("trace: pass --generate PATH, --inspect PATH or --to-pcap SRC DST",
          file=sys.stderr)
    return 2


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpeedyBox reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--flows", type=int, default=40, help="flows in the synthetic trace")
        p.add_argument("--seed", type=int, default=1, help="trace seed")

    def profiling(p):
        p.add_argument(
            "--profile",
            action="store_true",
            help="run the command under cProfile and print the top 30 "
                 "functions by cumulative time",
        )
        p.add_argument(
            "--profile-out",
            metavar="PATH",
            help="also dump the raw profile stats to PATH "
                 "(load with pstats.Stats or snakeviz)",
        )

    def observability(p):
        p.add_argument(
            "--metrics-json",
            metavar="PATH",
            help="enable the metrics registry and write its snapshot as JSON "
                 "('-' prints to stdout)",
        )
        p.add_argument(
            "--trace-out",
            metavar="PATH",
            help="enable the packet-path tracer and write a Chrome trace-event "
                 "file (opens in chrome://tracing / Perfetto)",
        )
        p.add_argument(
            "--metrics-prom",
            metavar="PATH",
            help="enable the metrics registry and write a Prometheus "
                 "text-format exposition ('-' prints to stdout)",
        )
        p.add_argument(
            "--audit-out",
            metavar="PATH",
            help="enable the decision audit log and write it as JSON lines",
        )
        p.add_argument(
            "--span-out",
            metavar="PATH",
            help="enable the sampled per-flow span recorder and write its "
                 "spans as JSON lines",
        )
        p.add_argument(
            "--span-every",
            type=int,
            default=64,
            metavar="N",
            help="sample 1 in N flows for spans (default 64; 1 = every flow)",
        )
        p.add_argument(
            "--timeseries-out",
            metavar="PATH",
            help="enable windowed telemetry (and the cluster health model) "
                 "and write per-window summaries as JSON lines",
        )
        p.add_argument(
            "--window-ns",
            type=float,
            default=None,
            metavar="NS",
            help="telemetry window width in simulated ns (default 1e6)",
        )
        p.add_argument(
            "--window-packets",
            type=int,
            default=None,
            metavar="N",
            help="use an N-packet window clock instead of simulated time",
        )
        p.add_argument(
            "--slo",
            action="append",
            default=None,
            metavar="SPEC",
            help="declare an SLO, e.g. 'p99<250us@0.999' or 'loss<0.1%%' "
                 "(repeatable; enables the telemetry layer and SLO engine)",
        )
        p.add_argument(
            "--forensics-out",
            metavar="PATH",
            help="enable tail-latency forensics (per-packet "
                 "queue/service/transfer/stall decomposition, worst-K flight "
                 "recorder, regime-shift detector) and write the artifact as "
                 "JSON lines — render it with 'repro obs explain'",
        )
        p.add_argument(
            "--worst-k",
            type=int,
            default=8,
            metavar="K",
            help="worst packets kept per forensics window (default 8)",
        )

    demo = sub.add_parser("demo", help="run a chain with and without SpeedyBox")
    demo.add_argument("--chain", default="nat,monitor,firewall")
    demo.add_argument("--platform", default="bess", choices=("bess", "onvm"))
    demo.add_argument("--no-speedybox", action="store_true")
    demo.add_argument("--list-nfs", action="store_true", help="print the NF catalogue")
    demo.add_argument(
        "--dump-rules",
        type=int,
        metavar="N",
        default=0,
        help="after the run, dump the last N consolidated Global MAT rules",
    )
    common(demo)
    observability(demo)
    profiling(demo)
    demo.set_defaults(func=cmd_demo)

    sweep = sub.add_parser("sweep", help="chain-length sweep (live Fig. 8)")
    sweep.add_argument("--platform", default="bess", choices=("bess", "onvm"))
    sweep.add_argument("--max-length", type=int, default=9)
    common(sweep)
    observability(sweep)
    profiling(sweep)
    sweep.set_defaults(func=cmd_sweep)

    equivalence = sub.add_parser("equivalence", help="lockstep output comparison")
    equivalence.add_argument("--chain", default="nat,maglev,monitor,firewall")
    common(equivalence)
    equivalence.set_defaults(func=cmd_equivalence)

    batch = sub.add_parser(
        "batch",
        help="columnar batch run down the whole-batch lane (vs the "
             "per-packet oracle with --compare)",
    )
    batch.add_argument("--platform", default="bess", choices=("bess", "onvm"))
    batch.add_argument(
        "--flows", type=int, default=100_000, metavar="N",
        help="total flows in the batch (default 100000)",
    )
    batch.add_argument(
        "--packets-per-flow", type=int, default=10, metavar="P",
        help="packets each flow sends (default 10)",
    )
    batch.add_argument(
        "--block", type=int, default=4096, metavar="B",
        help="concurrently live flows: round-robin interleave in blocks "
             "of B flows (default 4096)",
    )
    batch.add_argument(
        "--table", type=int, default=8192, metavar="C",
        help="flow-table and Global-MAT capacity (default 8192; older "
             "flows are LRU-evicted under pressure)",
    )
    batch.add_argument(
        "--compare", action="store_true",
        help="also run the per-packet oracle and verify the lane "
             "produced identical results (exit 1 on divergence)",
    )
    batch.add_argument(
        "--no-batch-lane", action="store_true",
        help="run the columnar batch through the per-packet path only",
    )
    batch.add_argument(
        "--forensics-out", metavar="PATH",
        help="enable tail-latency forensics on the measured leg and write "
             "the artifact as JSON lines (render with 'repro obs explain')",
    )
    batch.add_argument(
        "--worst-k", type=int, default=8, metavar="K",
        help="worst packets kept per forensics window (default 8)",
    )
    batch.add_argument("--seed", type=int, default=1, help=argparse.SUPPRESS)
    profiling(batch)
    batch.set_defaults(func=cmd_batch)

    scale = sub.add_parser(
        "scale", help="sharded replica sweep with optional migration churn"
    )
    scale.add_argument("--chain", default="nat,monitor,firewall")
    scale.add_argument(
        "--replicas", type=int, default=4, metavar="N",
        help="sweep replica counts 1..N (default 4)",
    )
    scale.add_argument(
        "--platforms", default="bess,onvm",
        help="comma-separated platform models to sweep (default both)",
    )
    scale.add_argument(
        "--churn", type=int, default=0, metavar="K",
        help="forcibly migrate K live flows between replicas before the "
             "loaded window (migration-churn ablation)",
    )
    scale.add_argument(
        "--physical-cores", type=int, default=None, metavar="C",
        help="shared core pool all replicas contend for (default: each "
             "replica gets its own cores)",
    )
    scale.add_argument(
        "--gap-ns", type=float, default=0.0,
        help="inter-arrival gap of the offered load in ns (default 0)",
    )
    scale.add_argument("--no-speedybox", action="store_true")
    scale.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="enable fault tolerance: checkpoint each replica's flows "
             "every N packets it receives",
    )
    scale.add_argument(
        "--kill-at", type=int, default=None, metavar="K",
        help="kill the busiest replica when global packet K arrives "
             "(rows with >1 replica; implies fault tolerance)",
    )
    scale.add_argument(
        "--recover-after", type=int, default=None, metavar="M",
        help="auto-recover M packets after the kill (default: recover "
             "at end of the window)",
    )
    scale.add_argument(
        "--no-charge-recovery", action="store_true",
        help="do not charge failover stall (detect->drain wall time) to "
             "buffered packets' simulated latency (pre-charging behaviour)",
    )
    common(scale)
    observability(scale)
    scale.set_defaults(func=cmd_scale)

    ft = sub.add_parser(
        "ft", help="fault-tolerance demo and recovery report"
    )
    ft.add_argument("action", choices=["demo", "report"], help="what to run")
    ft.add_argument("--chain", default="nat,monitor,firewall")
    ft.add_argument("--platform", default="bess", choices=("bess", "onvm"))
    ft.add_argument(
        "--replicas", type=int, default=4, metavar="N",
        help="cluster size for the demo (default 4)",
    )
    ft.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="checkpoint cadence in packets per replica (default 16)",
    )
    ft.add_argument(
        "--kill-at", type=int, default=None, metavar="K",
        help="global packet index of the kill (default: mid-stream)",
    )
    ft.add_argument(
        "--kill-replica", type=int, default=None, metavar="R",
        help="replica to kill (default: the one homing the most flows)",
    )
    ft.add_argument(
        "--recover-after", type=int, default=None, metavar="M",
        help="auto-recover M packets after the kill (default: at end)",
    )
    ft.add_argument(
        "--no-charge-recovery", action="store_true",
        help="do not charge failover stall (detect->drain wall time) to "
             "buffered packets' simulated latency (pre-charging behaviour)",
    )
    ft.add_argument("--audit", metavar="PATH",
                    help="(report) audit-event JSONL file from --audit-out")
    ft.add_argument("--metrics", metavar="PATH",
                    help="(report) metrics snapshot JSON or Prometheus text")
    common(ft)
    observability(ft)
    ft.set_defaults(func=cmd_ft)

    obs = sub.add_parser(
        "obs",
        help="render observability artifacts (spans, audit, metrics, "
             "telemetry windows, forensics) or diff benchmark results",
    )
    obs.add_argument(
        "action", choices=["report", "watch", "diff", "explain"],
        help="what to render",
    )
    obs.add_argument("--windows", metavar="PATH",
                     help="telemetry-window JSONL file (a --timeseries-out artifact)")
    obs.add_argument("--forensics", metavar="PATH",
                     help="tail-latency forensics JSONL file (a --forensics-out "
                          "artifact; drives 'obs explain' and the report's "
                          "forensics section)")
    obs.add_argument("--baseline", metavar="PATH",
                     help="diff: baseline BENCH_*.json file or directory")
    obs.add_argument("--current", metavar="PATH",
                     help="diff: current BENCH_*.json file or directory")
    obs.add_argument("--threshold", type=float, default=0.05, metavar="FRAC",
                     help="diff: regression threshold as a fraction (default 0.05)")
    obs.add_argument("--show-ok", action="store_true",
                     help="diff: also list unchanged metrics")
    obs.add_argument("--metrics", metavar="PATH",
                     help="metrics snapshot (JSON) or Prometheus text file")
    obs.add_argument("--spans", metavar="PATH", help="flow-span JSONL file")
    obs.add_argument("--audit", metavar="PATH", help="audit-event JSONL file")
    obs.add_argument("--slo-us", type=float, default=None, metavar="US",
                     help="latency SLO in microseconds for the attainment section")
    obs.add_argument("--percentile", type=float, default=0.99,
                     help="SLO percentile (default 0.99)")
    obs.add_argument("--top", type=int, default=5,
                     help="rows in the top-flows table (default 5)")
    obs.set_defaults(func=cmd_obs)

    trace = sub.add_parser("trace", help="generate, inspect or convert .sbtr traces")
    trace.add_argument("--generate", metavar="PATH")
    trace.add_argument("--inspect", metavar="PATH")
    trace.add_argument(
        "--to-pcap", nargs=2, metavar=("SRC", "DST"),
        help="convert an .sbtr capture to a Wireshark-compatible .pcap",
    )
    trace.add_argument("--gap-ns", type=float, default=1000.0)
    common(trace)
    trace.set_defaults(func=cmd_trace)
    return parser


def run_profiled(args: argparse.Namespace) -> int:
    """Run the selected command under cProfile; report top-30 cumulative."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    status = profiler.runcall(args.func, args)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    print("\n-- profile (top 30 by cumulative time) " + "-" * 32)
    stats.strip_dirs().sort_stats("cumulative").print_stats(30)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"wrote raw profile stats to {args.profile_out}")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if getattr(args, "profile", False) or getattr(args, "profile_out", None):
        return run_profiled(args)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
