"""The SpeedyBox runtime and the baseline service chain (§III, Fig. 1).

:class:`ServiceChain` is the original, un-consolidated chain: every packet
traverses every NF in order (stopping at a drop), exactly as BESS or
OpenNetVM would run it without SpeedyBox.

:class:`SpeedyBox` wires the Packet Classifier, per-NF Local MATs, the
Global MAT and the Event Table around the same NF objects:

- packets of not-yet-consolidated flows traverse the original chain while
  the NFs record their behaviour through the instrumentation APIs; when
  the initial packet finishes, the Global MAT consolidates;
- subsequent packets take the fast path: event check → consolidated
  header action → state-function schedule → post-update event check;
- FIN/RST deletes the flow's rules everywhere.

Both runtimes return a :class:`ProcessReport` carrying per-stage cycle
meters; platforms (``repro.platform``) convert meters into time, adding
their own transport costs (BESS module dispatch vs ONVM ring hops).

Ablation flags: ``enable_consolidation`` (header-action consolidation,
§V-B) and ``enable_parallelism`` (state-function parallelism, §V-C2) can
be disabled independently to reproduce the Fig. 7 breakdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import Decap, Drop, Encap, Forward, HeaderAction, Modify
from repro.core.classifier import Classification, FlowEntry, PacketClassifier
from repro.core.consolidation import ConsolidatedAction
from repro.core.event_table import Event, EventTable
from repro.core.global_mat import GlobalMAT, GlobalRule
from repro.core.local_mat import (
    BufferedInstrumentationAPI,
    InstrumentationAPI,
    LocalMAT,
    LocalRule,
    NullInstrumentationAPI,
)
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.platform.costs import CycleMeter, NULL_METER as _NULL_API_METER, Operation


class PathTaken(enum.Enum):
    ORIGINAL = "original"            # initial packet, recorded + consolidated
    ORIGINAL_HANDSHAKE = "handshake"  # pre-establishment, not recorded
    ORIGINAL_COLLISION = "collision"  # FID collision, pinned to slow path
    FAST = "fast"                    # Global MAT fast path


@dataclass(slots=True)
class ProcessReport:
    """Everything a platform needs to time one packet."""

    path: PathTaken
    fid: int
    dropped: bool = False
    closing: bool = False
    events_fired: int = 0
    #: classifier + MAT machinery + consolidated-action application
    fixed_meter: CycleMeter = field(default_factory=CycleMeter)
    #: slow path: chain-ordered (nf_name, meter) for NFs that ran
    nf_meters: List[Tuple[str, CycleMeter]] = field(default_factory=list)
    #: fast path: per wave, per batch (nf_name, meter)
    sf_waves: List[List[Tuple[str, CycleMeter]]] = field(default_factory=list)
    #: (platform, work, latency, main_core) memo — ``Platform._time_report``
    #: is invoked twice per loaded packet (unloaded timing + stage plan);
    #: the cache collapses the second walk.  Owned by ``repro.platform``.
    timing_cache: Optional[Tuple[object, float, float, float]] = field(
        default=None, repr=False, compare=False
    )
    #: True for the per-flow singleton report a :class:`CompiledFlow`
    #: returns for every steady-state packet (no SF waves, so nothing in
    #: it varies per packet).  Consumers may key caches on the report's
    #: identity when this is set — the object outlives the run.
    steady: bool = field(default=False, repr=False, compare=False)
    #: ``(platform, stage_plan, plan_id, lane)`` memo for steady singleton
    #: reports.  The lean functional pass and the batch lane both derive
    #: exactly one stage plan per steady report; keeping the memo *on the
    #: report* (instead of an ``id()``-keyed side table) means a report
    #: garbage-collected after a flow eviction can never leave a stale
    #: entry behind for a recycled id.  ``plan_id``/``lane`` are the batch
    #: lane's plan-table index and its owning run (``None`` elsewhere).
    #: Owned by ``repro.platform``.
    plan_cache: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def is_fast(self) -> bool:
        return self.path is PathTaken.FAST

    def total_meter(self) -> CycleMeter:
        """All charges merged (platform-transport costs NOT included)."""
        total = self.fixed_meter.copy()
        for __, meter in self.nf_meters:
            total.merge(meter)
        for wave in self.sf_waves:
            for __, meter in wave:
                total.merge(meter)
        return total


@dataclass
class FlowRecord:
    """One flow's complete runtime state, detached for migration.

    Everything SpeedyBox holds for the flow — classifier connection
    state, per-NF Local MAT rules, the consolidated Global MAT rule, and
    registered events — plus ``nf_state``: per-NF opaque snapshots
    (:meth:`NetworkFunction.export_flow_state`) keyed by NF name.  The
    record is produced by :meth:`SpeedyBox.export_flow` and consumed by
    :meth:`SpeedyBox.import_flow`; ``repro.scale.FlowMigrator`` rebinds
    the recorded handlers to the target replica's NFs in between.
    """

    fid: int
    classifier_entry: Optional[FlowEntry] = None
    local_rules: Dict[str, LocalRule] = field(default_factory=dict)
    global_rule: Optional[GlobalRule] = None
    events: List[Event] = field(default_factory=list)
    nf_state: Dict[str, object] = field(default_factory=dict)


def _check_unique_names(nfs: Sequence[NetworkFunction]) -> None:
    names = [nf.name for nf in nfs]
    if len(set(names)) != len(names):
        raise ValueError(f"NF names must be unique within a chain, got {names}")


class ServiceChain:
    """The original chain: sequential NF traversal, no consolidation."""

    def __init__(self, nfs: Sequence[NetworkFunction], metrics: MetricsRegistry = NULL_REGISTRY):
        if not nfs:
            raise ValueError("a service chain needs at least one NF")
        _check_unique_names(nfs)
        self.nfs: List[NetworkFunction] = list(nfs)
        self._api = NullInstrumentationAPI()
        self.packets = 0
        self.metrics = metrics
        self._m_packets = metrics.counter(
            "chain_packets_total", "packets through the original chain"
        )
        self._m_drops = metrics.counter(
            "packets_dropped_total", "drops attributed to the NF that dropped"
        )

    @property
    def nf_names(self) -> Tuple[str, ...]:
        return tuple(nf.name for nf in self.nfs)

    def __len__(self) -> int:
        return len(self.nfs)

    def process(self, packet: Packet) -> ProcessReport:
        """Run the packet through every NF in order (stop at drop)."""
        self.packets += 1
        self._m_packets.inc()
        report = ProcessReport(path=PathTaken.ORIGINAL, fid=-1)
        for nf in self.nfs:
            meter = CycleMeter()
            nf.meter = meter
            try:
                nf.process(packet, self._api)
            finally:
                _detach_meter(nf)
            report.nf_meters.append((nf.name, meter))
            if packet.dropped:
                report.dropped = True
                self._m_drops.labels(cause=nf.name).inc()
                break
        if _is_closing_packet(packet):
            report.closing = True
            for nf in self.nfs:
                nf.handle_flow_close(packet)
        return report

    def reset(self) -> None:
        self.packets = 0
        for nf in self.nfs:
            nf.reset()


def _detach_meter(nf: NetworkFunction):
    nf.meter = _NULL_API_METER
    return _NULL_API_METER


def _is_closing_packet(packet: Packet) -> bool:
    from repro.net.headers import TCP_FIN, TCP_RST, TCPHeader

    return isinstance(packet.l4, TCPHeader) and (
        packet.l4.has_flag(TCP_FIN) or packet.l4.has_flag(TCP_RST)
    )


class SpeedyBox:
    """The SpeedyBox runtime around a chain of NFs."""

    def __init__(
        self,
        nfs: Sequence[NetworkFunction],
        enable_consolidation: bool = True,
        enable_parallelism: bool = True,
        max_flows: Optional[int] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        compile_fast_path: bool = True,
        audit: AuditLog = NULL_AUDIT,
        max_tracked_flows: Optional[int] = None,
    ):
        if not nfs:
            raise ValueError("SpeedyBox needs at least one NF")
        _check_unique_names(nfs)
        self.nfs: List[NetworkFunction] = list(nfs)
        self.nf_by_name: Dict[str, NetworkFunction] = {nf.name: nf for nf in nfs}
        self.enable_consolidation = enable_consolidation
        self.max_flows = max_flows
        #: bound on *classifier* connection-tracking entries; evicting a
        #: tracked flow tears down everything else keyed by it, so with
        #: this set every per-flow table is bounded and long runs over
        #: millions of flows keep a flat footprint.
        self.max_tracked_flows = max_tracked_flows
        self.metrics = metrics
        self.audit = audit
        #: compiled steady-state fast lanes (repro.core.fastpath), keyed
        #: by *five-tuple* so the per-packet dispatch is one dict probe on
        #: a plain header tuple — no FID hash, no FiveTuple allocation —
        #: and a hit doubles as the flow-identity check.  ``_compiled_fids``
        #: is the FID-keyed index the invalidation hooks use.  Observably
        #: identical to the interpreted fast path; disable to force the
        #: legacy per-packet dispatch.
        self.compile_fast_path = compile_fast_path
        self._compiled: Dict[FiveTuple, "object"] = {}
        self._compiled_fids: Dict[int, FiveTuple] = {}
        #: batch-lane invalidation feed.  While a lane run is active this
        #: points at a list; every mutation of a flow's compiled lane
        #: (replace, pop, rule rebuild after an event) appends the FID so
        #: the lane can evict its cached clone before trusting it again.
        #: ``None`` whenever no lane run is in flight.
        self._lane_invalidations: Optional[list] = None
        self.classifier = PacketClassifier(
            metrics=metrics,
            capacity=max_tracked_flows,
            on_evict=self._on_classifier_evicted,
        )
        self.event_table = EventTable(metrics=metrics)
        self.global_mat = GlobalMAT(
            enable_parallelism=enable_parallelism,
            capacity=max_flows,
            on_evict=self._on_rule_evicted,
            metrics=metrics,
            audit=audit,
        )
        self.local_mats: Dict[str, LocalMAT] = {
            nf.name: LocalMAT(nf.name, self.event_table) for nf in nfs
        }
        self.apis: Dict[str, InstrumentationAPI] = {
            nf.name: InstrumentationAPI(self.local_mats[nf.name], self.event_table) for nf in nfs
        }
        #: setup memo (batch engine): when enabled, a brand-new flow whose
        #: recording is header-actions-only and value-identical to an
        #: earlier flow's reuses that flow's consolidated artifacts
        #: (identical tables, meters and reports — just built cheaper).
        #: Toggled by the batch lane for the duration of a batch run.
        self.memoize_setup = False
        self._setup_memo: Dict[tuple, GlobalRule] = {}
        #: compiled-closure templates keyed by the *identity* of the
        #: shared (consolidated, schedule) pair install_prebuilt produced
        #: — identity equality IS template equality (repro.core.fastpath).
        self._compiled_templates: Dict[Tuple[int, int], object] = {}
        self._memo_apis: List[BufferedInstrumentationAPI] = [
            BufferedInstrumentationAPI(self.local_mats[nf.name], self.event_table) for nf in nfs
        ]
        self.slow_packets = 0
        self.fast_packets = 0
        path_counter = metrics.counter(
            "path_packets_total", "packets by path taken through the runtime"
        )
        self._m_path = {path: path_counter.labels(path=path.value) for path in PathTaken}
        self._m_drops = metrics.counter(
            "packets_dropped_total", "drops attributed to the NF that dropped"
        )
        self._m_fast = metrics.counter(
            "fast_path_packets_total", "packets served by the Global MAT fast path"
        )
        self._m_slow = metrics.counter(
            "slow_path_packets_total", "packets that traversed the original chain"
        )
        self._m_events_fired = metrics.counter(
            "fast_path_events_fired_total", "event firings observed on the fast path"
        )
        self._m_flow_deletes = metrics.counter(
            "flow_deletes_total", "FIN/RST full-table flow teardowns"
        )

    @property
    def nf_names(self) -> Tuple[str, ...]:
        return tuple(nf.name for nf in self.nfs)

    @property
    def enable_parallelism(self) -> bool:
        return self.global_mat.enable_parallelism

    # -- the per-packet entry point (Fig. 1 walkthrough) --------------------

    def process(self, packet: Packet) -> ProcessReport:
        compiled = self._compiled
        if compiled:
            l4 = packet.l4
            if l4 is not None:
                ip = packet.ip
                # A plain tuple hashes/compares like the FiveTuple keys,
                # so the probe is allocation-free and a hit *is* the
                # flow-identity check (no FID collision can slip through).
                flow = compiled.get(
                    (ip.src_ip, ip.dst_ip, l4.src_port, l4.dst_port, ip.protocol)
                )
                if flow is not None:
                    report = flow.run(packet)
                    if report is not None:
                        return report

        report = ProcessReport(path=PathTaken.ORIGINAL, fid=-1)
        classification = self.classifier.classify(packet, report.fixed_meter)
        report.fid = classification.fid
        report.closing = classification.is_closing

        if classification.collided:
            report.path = PathTaken.ORIGINAL_COLLISION
            self._run_original(packet, report, record=False)
        elif classification.is_handshake:
            report.path = PathTaken.ORIGINAL_HANDSHAKE
            self._run_original(packet, report, record=False)
        else:
            rule = self.global_mat.lookup(classification.fid)
            report.fixed_meter.charge(Operation.GLOBAL_MAT_LOOKUP)
            if rule is not None:
                report.path = PathTaken.FAST
                self._run_fast(packet, rule, report)
            else:
                report.path = PathTaken.ORIGINAL
                entry = classification.entry
                if (
                    self.memoize_setup
                    and self.enable_consolidation
                    and not classification.is_closing
                    and entry is not None
                    and entry.packets == 1
                ):
                    self._run_original_memoized(packet, report)
                else:
                    self._run_original(packet, report, record=True)
            if self.compile_fast_path and not classification.is_closing:
                self._maybe_compile(classification)

        if classification.is_closing:
            self.delete_flow(classification.fid, report.fixed_meter)
            self._m_flow_deletes.inc()
            # NFs clean their own per-flow state on FIN/RST, exactly as
            # they would when seeing the teardown on the original path.
            for nf in self.nfs:
                nf.handle_flow_close(packet)

        self.classifier.detach(packet, report.fixed_meter)
        self._m_path[report.path].inc()
        if report.events_fired:
            self._m_events_fired.inc(report.events_fired)
        return report

    def _maybe_compile(self, classification: Classification) -> None:
        """(Re)compile the flow's fast lane after an interpreted traversal.

        Runs after fast and recorded-original packets alike, so the flow's
        *second* packet already takes the compiled lane.  Skipped while the
        flow has active events (each packet would rebuild the rule) and
        whenever :func:`repro.core.fastpath.compile_flow` declines.
        """
        fid = classification.fid
        rule = self.global_mat.peek(fid)
        if rule is None:
            return
        key = self._compiled_fids.get(fid)
        if key is not None:
            existing = self._compiled.get(key)
            if existing is not None and existing.rule is rule:
                return
        if self.event_table.active_event_count(fid):
            return
        flow = _fastpath.compile_flow(self, classification.entry, rule)
        if flow is not None:
            if key is not None:
                if key != flow.five_tuple:
                    self._compiled.pop(key, None)
                if self._lane_invalidations is not None:
                    self._lane_invalidations.append(fid)
            self._compiled[flow.five_tuple] = flow
            self._compiled_fids[fid] = flow.five_tuple
            self.audit.emit(
                "fastpath_compile",
                fid=fid,
                version=rule.version,
                waves=rule.schedule.wave_count,
                drop=rule.consolidated.drop,
            )
        elif key is not None:
            self._compiled.pop(key, None)
            del self._compiled_fids[fid]
            if self._lane_invalidations is not None:
                self._lane_invalidations.append(fid)
            self.audit.emit("fastpath_invalidate", fid=fid, reason="uncompilable")

    def _invalidate_compiled(self, fid: int, reason: str = "invalidated") -> None:
        """Drop a flow's compiled fast lane (rule or entry went away)."""
        key = self._compiled_fids.pop(fid, None)
        if key is not None:
            self._compiled.pop(key, None)
            if self._lane_invalidations is not None:
                self._lane_invalidations.append(fid)
            self.audit.emit("fastpath_invalidate", fid=fid, reason=reason)

    # -- original path with recording ---------------------------------------

    def _run_original(self, packet: Packet, report: ProcessReport, record: bool) -> None:
        self.slow_packets += 1
        self._m_slow.inc()
        fid = report.fid
        if record:
            for nf in self.nfs:
                self.local_mats[nf.name].begin_recording(fid)
                report.fixed_meter.charge(Operation.MAT_BEGIN_RECORD)

        null_api = NullInstrumentationAPI()
        for nf in self.nfs:
            meter = CycleMeter()
            nf.meter = meter
            api = self.apis[nf.name] if record else null_api
            api.meter = meter
            try:
                nf.process(packet, api)
            finally:
                _detach_meter(nf)
                api.meter = _NULL_API_METER
            report.nf_meters.append((nf.name, meter))
            if packet.dropped:
                report.dropped = True
                self._m_drops.labels(cause=nf.name).inc()
                break

        if record and not report.closing:
            self._consolidate(fid, report.fixed_meter)

    def _run_original_memoized(self, packet: Packet, report: ProcessReport) -> None:
        """Recorded original traversal with the flow-setup memo.

        Behaviourally identical to ``_run_original(record=True)`` — same
        NF execution, same table state, same meter charges in the same
        order — but brand-new flows whose recording turns out to be
        header-actions-only and value-identical to an earlier flow's skip
        the consolidation *computation*: the Global MAT rule is installed
        as a clone sharing the template's consolidated action and schedule
        by identity (:meth:`GlobalMAT.install_prebuilt`), which in turn
        lets ``repro.core.fastpath`` clone the compiled closure instead
        of rebuilding it.  This is what makes per-flow setup affordable
        at millions of flows.
        """
        self.slow_packets += 1
        self._m_slow.inc()
        fid = report.fid
        nfs = self.nfs
        # counts-dict-equal to n separate charges, same insertion order
        report.fixed_meter.charge(Operation.MAT_BEGIN_RECORD, len(nfs))
        for nf in nfs:
            self.local_mats[nf.name].begin_recording(fid)

        apis = self._memo_apis
        ran = 0
        for index, nf in enumerate(nfs):
            meter = CycleMeter()
            nf.meter = meter
            api = apis[index]
            api.reset()
            api.meter = meter
            try:
                nf.process(packet, api)
            finally:
                _detach_meter(nf)
                api.meter = _NULL_API_METER
            report.nf_meters.append((nf.name, meter))
            ran = index + 1
            if packet.dropped:
                report.dropped = True
                self._m_drops.labels(cause=nf.name).inc()
                break

        # Materialize the buffers into the Local MATs: table state and
        # records_* counters match the live-API traversal exactly.
        dynamic = False
        for index in range(ran):
            api = apis[index]
            local_mat = self.local_mats[nfs[index].name]
            for action in api.actions:
                local_mat.add_header_action(fid, action)
            for function in api.functions:
                local_mat.add_state_function(fid, function)
            if api.functions or api.events:
                dynamic = True
        for index in range(ran):
            api = apis[index]
            if api.events:
                rule = self.local_mats[nfs[index].name].rule_for(fid)
                for event in api.events:
                    self.event_table.register(event)
                    if rule is not None:
                        rule.event_count += 1

        if report.closing:
            return
        if dynamic:
            # State functions or events: per-flow closures make the
            # recording unshareable — consolidate normally.
            self._consolidate(fid, report.fixed_meter)
            return
        signature = tuple(tuple(apis[index].actions) for index in range(ran))
        try:
            template = self._setup_memo.get(signature)
        except TypeError:  # an unhashable action: no memo for this flow
            self._consolidate(fid, report.fixed_meter)
            return
        if template is None:
            rule = self._consolidate(fid, report.fixed_meter)
            if len(self._setup_memo) > 4096:
                self._setup_memo.clear()
            self._setup_memo[signature] = rule
        else:
            action_count = sum(len(actions) for actions in signature)
            report.fixed_meter.charge(Operation.CONSOLIDATE_ACTION, max(action_count, 1))
            report.fixed_meter.charge(Operation.GLOBAL_RULE_INSTALL)
            self.global_mat.install_prebuilt(fid, template)

    def _consolidate(self, fid: int, meter: CycleMeter) -> GlobalRule:
        ordered = [(nf.name, self.local_mats[nf.name].rule_for(fid)) for nf in self.nfs]
        action_count = sum(len(rule.header_actions) for __, rule in ordered if rule is not None)
        meter.charge(Operation.CONSOLIDATE_ACTION, max(action_count, 1))
        meter.charge(Operation.GLOBAL_RULE_INSTALL)
        return self.global_mat.build_rule(fid, ordered)

    # -- the fast path -------------------------------------------------------

    def _run_fast(self, packet: Packet, rule: GlobalRule, report: ProcessReport) -> None:
        self.fast_packets += 1
        self._m_fast.inc()
        fid = rule.fid
        meter = report.fixed_meter
        meter.charge(Operation.FAST_PATH_DISPATCH)

        # (1) Event pre-check: has anything changed since the last packet?
        fired = self._check_events(fid, meter)
        if fired:
            report.events_fired += fired
            rule = self.global_mat.peek(fid) or rule

        # (2) Apply the consolidated header action (or the raw action list
        #     when the consolidation ablation is off).  Drop rules with
        #     state functions defer the actual drop: the batches up to the
        #     dropping NF must observe the packet exactly as the original
        #     path showed it to their NFs — rewritten by the upstream
        #     actions (pre_drop), and not yet dropped until the dropper's
        #     own position.
        is_drop_rule = self.enable_consolidation and rule.consolidated.drop
        if self.enable_consolidation:
            if is_drop_rule:
                meter.charge(Operation.DROP_FREE)
                if rule.schedule.batch_count and rule.pre_drop is not None:
                    self._apply_nondrop(rule.pre_drop, packet, meter)
            else:
                self._apply_nondrop(rule.consolidated, packet, meter)
        else:
            self._apply_raw(rule, packet, meter)

        # (3) Execute the state-function schedule.
        for wave in rule.schedule.waves:
            wave_meters: List[Tuple[str, CycleMeter]] = []
            for batch in wave:
                if is_drop_rule and not packet.dropped and batch.nf_name == rule.dropper:
                    packet.drop()  # the dropper's own SFs see a dropped packet
                batch_meter = CycleMeter()
                owner = self.nf_by_name.get(batch.nf_name)
                if owner is not None:
                    owner.meter = batch_meter
                batch_meter.charge(Operation.SF_INVOKE, len(batch))
                try:
                    batch.execute(packet)
                finally:
                    if owner is not None:
                        _detach_meter(owner)
                wave_meters.append((batch.nf_name, batch_meter))
            report.sf_waves.append(wave_meters)
        if is_drop_rule and not packet.dropped:
            packet.drop()

        # (4) Post-update event check ("as soon as states have been
        #     updated", §V-C1): affects *subsequent* packets.
        fired = self._check_events(fid, meter)
        report.events_fired += fired

        report.dropped = packet.dropped
        if report.dropped:
            self._m_drops.labels(cause=rule.dropper or "consolidated").inc()

    def _apply_nondrop(self, action: ConsolidatedAction, packet: Packet, meter: CycleMeter) -> None:
        """Charge and apply a consolidated action's non-drop effects."""
        meter.charge(Operation.DECAP_OP, len(action.leading_decaps))
        field_count = len(action.field_ops)
        if field_count:
            meter.charge(Operation.FIELD_WRITE)
            meter.charge(Operation.MERGED_FIELD_WRITE, field_count - 1)
            meter.charge(Operation.CHECKSUM_UPDATE)
        meter.charge(Operation.ENCAP_OP, len(action.net_encaps))
        action.apply(packet)

    def _apply_raw(self, rule: GlobalRule, packet: Packet, meter: CycleMeter) -> None:
        """Ablation: apply every recorded action sequentially (no merge)."""
        for action in rule.raw_actions:
            if isinstance(action, Drop):
                meter.charge(Operation.DROP_FREE)
            elif isinstance(action, Modify):
                meter.charge(Operation.FIELD_WRITE, len(action.ops))
                meter.charge(Operation.CHECKSUM_UPDATE)
            elif isinstance(action, Encap):
                meter.charge(Operation.ENCAP_OP)
            elif isinstance(action, Decap):
                meter.charge(Operation.DECAP_OP)
            action.apply(packet)
            if packet.dropped:
                return
        packet.finalize()

    def _check_events(self, fid: int, meter: CycleMeter) -> int:
        active = self.event_table.active_event_count(fid)
        meter.charge(Operation.EVENT_CHECK, active)
        if not active:
            return 0
        fired = self.event_table.check_fid(fid)
        for event, replacement in fired:
            local_mat = self.local_mats.get(event.nf_name)
            if local_mat is None:
                continue
            if replacement is not None:
                local_mat.replace_header_actions(fid, [replacement])
            if event.update_state_functions is not None:
                local_mat.replace_state_functions(fid, event.update_state_functions)
        if fired:
            self._consolidate(fid, meter)
            # The rebuilt rule orphans any compiled clone for the FID
            # without popping it (the clone's identity gate catches it);
            # a lane caching validated clones must hear about it too.
            if self._lane_invalidations is not None:
                self._lane_invalidations.append(fid)
        return len(fired)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """A snapshot of the runtime's counters (monitoring surface)."""
        total = self.slow_packets + self.fast_packets
        return {
            "packets": total,
            "slow_packets": self.slow_packets,
            "fast_packets": self.fast_packets,
            "fast_path_rate": (self.fast_packets / total) if total else 0.0,
            "active_rules": len(self.global_mat),
            "consolidations": self.global_mat.consolidations,
            "reconsolidations": self.global_mat.reconsolidations,
            "evictions": self.global_mat.evictions,
            "events_registered": self.event_table.total_registered,
            "events_triggered": self.event_table.total_triggered,
            "fid_collisions": self.classifier.collisions,
            "tracked_flows": len(self.classifier),
            "classifier_evictions": self.classifier.evictions,
        }

    # -- flow lifecycle ------------------------------------------------------

    def _on_rule_evicted(self, fid: int) -> None:
        """LRU eviction callback: tear down the flow's other records.

        The classifier entry stays so connection state (established,
        packet counts) survives; the flow's next packet takes the
        original path and re-consolidates.
        """
        self._invalidate_compiled(fid, reason="rule_evicted")
        for local_mat in self.local_mats.values():
            local_mat.delete_flow(fid)
        self.event_table.clear_flow(fid)

    def _on_classifier_evicted(self, entry: FlowEntry) -> None:
        """Classifier capacity eviction: drop *every* trace of the flow.

        Unlike :meth:`_on_rule_evicted` (Global-MAT LRU pressure, where
        connection state survives), a classifier eviction forgets the
        flow entirely — its next packet, if any, starts over as a brand
        new flow.  Compiled closure, Global MAT rule, Local MAT rules and
        events must all go together (the flow-table growth hazard: a
        dangling compiled closure would keep serving a forgotten flow).
        """
        fid = entry.fid
        self._invalidate_compiled(fid, reason="classifier_evict")
        self.global_mat.delete_flow(fid)
        for local_mat in self.local_mats.values():
            local_mat.delete_flow(fid)
        self.event_table.clear_flow(fid)
        self.audit.emit("classifier_evict", fid=fid, packets=entry.packets)

    def delete_flow(self, fid: int, meter: Optional[CycleMeter] = None) -> None:
        """FIN/RST cleanup across every table (§VI-B)."""
        if meter is not None:
            meter.charge(Operation.FLOW_DELETE)
        self._invalidate_compiled(fid, reason="flow_delete")
        self.global_mat.delete_flow(fid)
        for local_mat in self.local_mats.values():
            local_mat.delete_flow(fid)
        self.event_table.clear_flow(fid)
        self.classifier.remove_flow(fid)

    # -- migration support (repro.scale) -------------------------------------

    def export_flow(self, fid: int, reason: str = "flow_export") -> Optional[FlowRecord]:
        """Detach all runtime state of one flow as an atomic unit.

        Returns ``None`` when the classifier knows nothing about the FID.
        The tables are left with no trace of the flow; recorded handlers
        in the returned record still reference *this* runtime's NFs — the
        migrator must rebind them before :meth:`import_flow` on a target.
        ``reason`` labels the compiled-lane invalidation in the audit log
        (``flow_export`` for migration, ``checkpoint_capture`` for the
        fault-tolerance snapshot round-trip).
        """
        self._invalidate_compiled(fid, reason=reason)
        entry = self.classifier.export_flow(fid)
        if entry is None:
            return None
        record = FlowRecord(fid=fid, classifier_entry=entry)
        for name, local_mat in self.local_mats.items():
            rule = local_mat.export_flow(fid)
            if rule is not None:
                record.local_rules[name] = rule
        record.global_rule = self.global_mat.export_rule(fid)
        record.events = self.event_table.export_flow(fid)
        return record

    def import_flow(self, record: FlowRecord, reason: str = "flow_import") -> None:
        """Install a migrated flow's runtime state into this runtime's tables.

        Handlers must already be rebound to this runtime's NF instances;
        NF-internal state (``record.nf_state``) is the migrator's job.
        ``reason`` labels the compiled-lane invalidation in the audit log
        (``flow_import`` for migration, ``checkpoint_restore`` when the
        fault-tolerance subsystem re-installs a snapshot — the restored
        flow's next packet recompiles its fast lane, observably identical
        by the compiled/interpreted parity contract).
        """
        self._invalidate_compiled(record.fid, reason=reason)
        if record.classifier_entry is not None:
            self.classifier.import_flow(record.classifier_entry)
        for name, rule in record.local_rules.items():
            local_mat = self.local_mats.get(name)
            if local_mat is None:
                raise KeyError(f"target chain has no NF named {name!r}")
            local_mat.import_flow(rule)
        if record.global_rule is not None:
            self.global_mat.import_rule(record.global_rule)
        self.event_table.import_flow(record.fid, record.events)

    def reset(self) -> None:
        """Fresh run: clear all tables and NF state."""
        self.classifier = PacketClassifier(
            metrics=self.metrics,
            capacity=self.max_tracked_flows,
            on_evict=self._on_classifier_evicted,
        )
        self.event_table = EventTable(metrics=self.metrics)
        self.global_mat = GlobalMAT(
            enable_parallelism=self.global_mat.enable_parallelism,
            capacity=self.max_flows,
            on_evict=self._on_rule_evicted,
            metrics=self.metrics,
            audit=self.audit,
        )
        self.local_mats = {nf.name: LocalMAT(nf.name, self.event_table) for nf in self.nfs}
        self.apis = {
            nf.name: InstrumentationAPI(self.local_mats[nf.name], self.event_table)
            for nf in self.nfs
        }
        self._memo_apis = [
            BufferedInstrumentationAPI(self.local_mats[nf.name], self.event_table)
            for nf in self.nfs
        ]
        self._setup_memo.clear()
        self._compiled_templates.clear()
        self.slow_packets = 0
        self.fast_packets = 0
        self._compiled.clear()
        self._compiled_fids.clear()
        for nf in self.nfs:
            nf.reset()


# Imported last: fastpath needs ProcessReport/PathTaken from this module,
# and this module only touches fastpath at runtime (inside _maybe_compile),
# so the cycle resolves through the module object.
from repro.core import fastpath as _fastpath  # noqa: E402
