"""Compiled flow closures: the steady-state fast lane (perf engine, part 1).

Once a flow is established on the Global MAT fast path, every subsequent
packet repeats exactly the same work: classify to the same FID, look up
the same rule, apply the same consolidated action, run the same
state-function schedule, charge the same fixed cycle counts.  The
interpreted path (:meth:`SpeedyBox.process` → ``_run_fast``) re-derives
all of that per packet through framework dispatch.

:func:`compile_flow` folds the per-flow constants into a
:class:`CompiledFlow`: pre-bound header-action steps
(:meth:`ConsolidatedAction.compiled`), a pre-charged fixed
:class:`CycleMeter` template shared by every packet of the flow, the
flow's interned key and FID, and direct references to the counters and
tables the interpreted path would re-look-up.  ``SpeedyBox.process``
consults its ``_compiled`` cache first; a hit runs :meth:`CompiledFlow.run`
and skips classification, MAT lookup and consolidation machinery
entirely.

Correctness contract: a compiled run is *observably identical* to the
interpreted fast path — same packet mutations, same report fields, same
meter charges in the same order (the cycle total of a meter is a float
sum in ``counts`` insertion order, so even the charge *order* matters for
exact equality), same counter/LRU side effects.  :meth:`CompiledFlow.run`
re-validates per packet and returns ``None`` (fall back to the
interpreted path) whenever the closure's assumptions no longer hold:

- the packet's five-tuple is not the flow's (FID collision);
- the packet carries TCP FIN/RST (teardown runs interpreted);
- the Global MAT no longer maps the FID to the compiled rule (deleted,
  evicted, rebuilt by an event, replaced by migration, or restored from
  a fault-tolerance checkpoint — ``repro.ft`` goes through the same
  export/import hooks, so a restore invalidates and the lane recompiles
  against the restored rule);
- the classifier no longer tracks the compiled entry;
- the Event Table holds an *active* event for the flow.

The shared fixed meter is immutable by convention — consumers read it
(``cycles`` is memoized per cost model); nothing on the fast lane writes
to it after compilation.

Metric-parity contract: when a registry is attached, a compiled run
increments *exactly* the counters the interpreted fast path would —
classifier classifications, Global MAT hits, fast/path/drop counters —
so ``registry.snapshot()`` is identical whichever lane served the run
(pinned by ``tests/unit/test_fastpath_metric_parity.py``).  The closure
binds the real bound-``inc`` methods at compile time when metrics are
on and ``None`` when they are off (``SpeedyBox`` hands one registry to
every component, so the group guard on ``speedybox._m_fast`` covers
them all).  Corollary for new instrumentation: per-lane signals that
only one lane could emit (compile/invalidate bookkeeping, lane-hit
tallies) must go to the :class:`~repro.obs.audit.AuditLog`, never to
registry counters, or parity breaks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.classifier import FlowEntry
from repro.core.framework import PathTaken, ProcessReport
from repro.core.global_mat import GlobalRule
from repro.net.flow import PROTO_TCP
from repro.net.headers import TCP_FIN, TCP_RST
from repro.obs.registry import NULL_INSTRUMENT
from repro.platform.costs import CycleMeter, NULL_METER, Operation

_FIN_RST = TCP_FIN | TCP_RST
_FAST = PathTaken.FAST
_SF_INVOKE = Operation.SF_INVOKE

#: Sentinel for a labelled drop counter not bound yet (binding a child
#: eagerly would materialise a zero-count series in metrics exports).
_PENDING = object()


def _inc_of(counter):
    """``counter.inc`` bound once, or ``None`` for the no-op instrument.

    The interpreted path pays one empty method call per disabled
    instrument per packet; the compiled lane replaces each with a single
    ``is not None`` test.
    """
    return None if counter is NULL_INSTRUMENT else counter.inc


def _charge_nondrop(meter: CycleMeter, action) -> None:
    """Replicate ``SpeedyBox._apply_nondrop``'s charges, in its order."""
    meter.charge(Operation.DECAP_OP, len(action.leading_decaps))
    field_count = len(action.field_ops)
    if field_count:
        meter.charge(Operation.FIELD_WRITE)
        meter.charge(Operation.MERGED_FIELD_WRITE, field_count - 1)
        meter.charge(Operation.CHECKSUM_UPDATE)
    meter.charge(Operation.ENCAP_OP, len(action.net_encaps))


def _build_fixed_meter(rule: GlobalRule) -> CycleMeter:
    """The per-packet fixed meter of a steady-state fast-path packet.

    Charge order mirrors the interpreted path exactly — classify
    (PARSE, FID_HASH, METADATA_ATTACH), Global MAT lookup, fast-path
    dispatch, the consolidated action's charges, metadata detach — so
    the float summation order inside ``cycles()`` is identical too.
    """
    meter = CycleMeter()
    meter.charge(Operation.PARSE)
    meter.charge(Operation.FID_HASH)
    meter.charge(Operation.METADATA_ATTACH)
    meter.charge(Operation.GLOBAL_MAT_LOOKUP)
    meter.charge(Operation.FAST_PATH_DISPATCH)
    if rule.consolidated.drop:
        meter.charge(Operation.DROP_FREE)
        if rule.schedule.batch_count and rule.pre_drop is not None:
            _charge_nondrop(meter, rule.pre_drop)
    else:
        _charge_nondrop(meter, rule.consolidated)
    meter.charge(Operation.METADATA_DETACH)
    return meter


class CompiledFlow:
    """One flow's fast path, pre-bound into a single cached callable."""

    __slots__ = (
        "speedybox",
        "classifier",
        "entry",
        "five_tuple",
        "fid",
        "is_tcp",
        "rule",
        "rules",
        "flows",
        "move_to_end",
        "events_by_fid",
        "apply_fn",
        "waves",
        "is_drop",
        "drop_cause",
        "fixed_meter",
        "steady_report",
        "_m_classified_inc",
        "_m_hits_inc",
        "_m_fast_inc",
        "_m_path_inc",
        "_drops_inc",
    )

    def __init__(self, speedybox, entry: FlowEntry, rule: GlobalRule):
        self.speedybox = speedybox
        classifier = speedybox.classifier
        self.classifier = classifier
        self.entry = entry
        self.five_tuple = entry.five_tuple
        self.fid = entry.fid
        self.is_tcp = entry.five_tuple.protocol == PROTO_TCP
        self.rule = rule
        global_mat = speedybox.global_mat
        self.rules = global_mat._rules
        self.flows = classifier._flows
        self.move_to_end = global_mat._rules.move_to_end
        self.events_by_fid = speedybox.event_table._by_fid

        self.is_drop = rule.consolidated.drop
        if self.is_drop:
            self.drop_cause = rule.dropper or "consolidated"
            if rule.schedule.batch_count and rule.pre_drop is not None:
                pre_drop = rule.pre_drop
                self.apply_fn = None if pre_drop.is_noop else pre_drop.compiled()
            else:
                self.apply_fn = None
        else:
            # A pure-FORWARD consolidated action compiles to nothing at
            # all: the interpreted path's trailing ``finalize`` only
            # re-derives fields (length/checksum) no one has touched
            # since arrival, so it is a fixpoint on any consistent
            # packet and ``serialize`` re-derives them regardless.
            action = rule.consolidated
            self.drop_cause = "consolidated"
            self.apply_fn = None if action.is_noop else action.compiled()

        nf_by_name = speedybox.nf_by_name
        dropper = rule.dropper
        self.waves = tuple(
            tuple(
                (
                    batch.nf_name,
                    nf_by_name.get(batch.nf_name),
                    batch.execute,
                    len(batch),
                    self.is_drop and batch.nf_name == dropper,
                )
                for batch in wave
            )
            for wave in rule.schedule.waves
        )

        self.fixed_meter = _build_fixed_meter(rule)
        if self.waves:
            self.steady_report = None
        else:
            # With no SF schedule nothing in the report varies per packet
            # (the drop decision is the rule's, the meter is the shared
            # template): one singleton report serves every packet.
            self.steady_report = ProcessReport(
                path=_FAST,
                fid=entry.fid,
                dropped=self.is_drop,
                fixed_meter=self.fixed_meter,
                steady=True,
            )
        # SpeedyBox hands one registry to every component, so the
        # per-packet counters are all-null or all-real; guard the group
        # on the first binding (run() calls the rest unconditionally).
        if speedybox._m_fast is NULL_INSTRUMENT:
            self._m_classified_inc = None
            self._m_hits_inc = None
            self._m_fast_inc = None
        else:
            self._m_classified_inc = classifier._m_classified.inc
            self._m_hits_inc = global_mat._m_hits.inc
            self._m_fast_inc = speedybox._m_fast.inc
        self._m_path_inc = _inc_of(speedybox._m_path[_FAST])
        #: labelled drop counter: ``None`` when metrics are off, bound
        #: lazily on the first drop otherwise (see ``_PENDING``)
        self._drops_inc = None if speedybox._m_drops is NULL_INSTRUMENT else _PENDING

    def clone_for(self, entry: FlowEntry, rule: GlobalRule) -> "CompiledFlow":
        """A compiled lane for another flow sharing this rule's artifacts.

        Only valid for steady (no-wave) templates whose rule shares this
        flow's ``consolidated``/``schedule`` *by identity* (the setup
        memo's ``install_prebuilt`` clones) — identity is what guarantees
        the fixed meter, apply closure and drop disposition carry over
        unchanged.  Everything per-flow is fresh.
        """
        clone = object.__new__(CompiledFlow)
        clone.speedybox = self.speedybox
        clone.classifier = self.classifier
        clone.entry = entry
        clone.five_tuple = entry.five_tuple
        clone.fid = entry.fid
        clone.is_tcp = entry.five_tuple.protocol == PROTO_TCP
        clone.rule = rule
        clone.rules = self.rules
        clone.flows = self.flows
        clone.move_to_end = self.move_to_end
        clone.events_by_fid = self.events_by_fid
        clone.is_drop = self.is_drop
        clone.drop_cause = self.drop_cause
        clone.apply_fn = self.apply_fn
        clone.waves = self.waves  # () — clones exist only for steady rules
        clone.fixed_meter = self.fixed_meter
        # Direct construction: clone_for sits on the bulk-admission hot
        # path, and the generated dataclass __init__ spends more time
        # binding arguments than storing them.
        report = ProcessReport.__new__(ProcessReport)
        report.path = _FAST
        report.fid = entry.fid
        report.dropped = self.is_drop
        report.closing = False
        report.events_fired = 0
        report.fixed_meter = self.fixed_meter
        report.nf_meters = []
        report.sf_waves = []
        report.timing_cache = None
        report.steady = True
        report.plan_cache = None
        clone.steady_report = report
        clone._m_classified_inc = self._m_classified_inc
        clone._m_hits_inc = self._m_hits_inc
        clone._m_fast_inc = self._m_fast_inc
        clone._m_path_inc = self._m_path_inc
        clone._drops_inc = self._drops_inc
        return clone

    def run(self, packet) -> Optional[ProcessReport]:
        """One steady-state packet; ``None`` means take the interpreted path.

        The caller dispatched here through a five-tuple-keyed dict probe,
        so the packet is already known to belong to this flow.
        """
        # -- validity gate: no state is touched until every check passes.
        if self.is_tcp:
            try:
                if packet.l4.flags & _FIN_RST:
                    return None  # teardown mutates the tables: interpret it
            except AttributeError:
                return None
        fid = self.fid
        if self.rules.get(fid) is not self.rule:
            return None  # rule deleted / evicted / rebuilt / migrated
        if self.flows.get(fid) is not self.entry:
            return None  # classifier entry replaced under us
        events = self.events_by_fid.get(fid)
        if events is not None:
            for event in events:
                if event.active:
                    return None  # event pending: the interpreted path fires it
        if packet.dropped:
            return None  # pre-dropped descriptor: pathological, interpret it

        # -- classify + Global MAT hit (established: pure bookkeeping).
        self.classifier.packets_classified += 1
        self.entry.packets += 1
        self.rule.hits += 1
        self.move_to_end(fid)
        speedybox = self.speedybox
        speedybox.fast_packets += 1
        inc = self._m_classified_inc
        if inc is not None:
            inc()
            self._m_hits_inc()
            self._m_fast_inc()

        apply_fn = self.apply_fn
        steady = self.steady_report
        if steady is not None:
            # -- no SF schedule: nothing observes the packet between here
            # and the return, so the fid metadata attach/detach pair (a
            # net no-op) is skipped and the singleton report says it all.
            if apply_fn is not None:
                apply_fn(packet)
            if self.is_drop:
                packet.dropped = True
                drops_inc = self._drops_inc
                if drops_inc is not None:
                    if drops_inc is _PENDING:
                        drops_inc = speedybox._m_drops.labels(cause=self.drop_cause).inc
                        self._drops_inc = drops_inc
                    drops_inc()
            inc = self._m_path_inc
            if inc is not None:
                inc()
            return steady

        # -- SF batches may read the flow metadata the classifier attaches.
        metadata = packet.metadata
        metadata["fid"] = fid

        # -- consolidated header action (pre-bound steps).
        if apply_fn is not None:
            apply_fn(packet)

        # -- state-function schedule.
        sf_waves = []
        for wave in self.waves:
            wave_meters = []
            for nf_name, owner, execute, sf_count, drop_first in wave:
                if drop_first and not packet.dropped:
                    packet.dropped = True
                batch_meter = CycleMeter()
                if owner is not None:
                    owner.meter = batch_meter
                batch_meter.charge(_SF_INVOKE, sf_count)
                try:
                    execute(packet)
                finally:
                    if owner is not None:
                        owner.meter = NULL_METER
                wave_meters.append((nf_name, batch_meter))
            sf_waves.append(wave_meters)
        if self.is_drop and not packet.dropped:
            packet.dropped = True

        dropped = packet.dropped
        if dropped:
            drops_inc = self._drops_inc
            if drops_inc is not None:
                if drops_inc is _PENDING:
                    drops_inc = speedybox._m_drops.labels(cause=self.drop_cause).inc
                    self._drops_inc = drops_inc
                drops_inc()

        # -- detach + path accounting.
        metadata.pop("fid", None)
        metadata.pop("fid_collision", None)
        inc = self._m_path_inc
        if inc is not None:
            inc()
        return ProcessReport(
            path=_FAST,
            fid=fid,
            dropped=dropped,
            fixed_meter=self.fixed_meter,
            sf_waves=sf_waves,
        )


def compile_flow(speedybox, entry: Optional[FlowEntry], rule: GlobalRule):
    """Compile a flow's fast path, or ``None`` when it cannot be cached.

    Compilation requires the consolidated form (the raw-action ablation
    keeps the interpreted path) and an established, open, collision-free
    classifier entry whose FID owns the rule.
    """
    if not speedybox.enable_consolidation:
        return None
    if entry is None or entry.closed or not entry.established:
        return None
    if entry.fid != rule.fid:
        return None
    if speedybox.memoize_setup:
        # Setup-memo runs: flows installed via ``install_prebuilt`` share
        # their (consolidated, schedule) pair by identity with a template
        # flow, so the closure can be cloned instead of rebuilt.  The
        # id() key stays valid because the template CompiledFlow in the
        # dict keeps both objects alive.
        templates = speedybox._compiled_templates
        key = (id(rule.consolidated), id(rule.schedule))
        template = templates.get(key)
        if template is not None and not template.waves:
            return template.clone_for(entry, rule)
        flow = CompiledFlow(speedybox, entry, rule)
        if not flow.waves:
            if len(templates) > 4096:
                templates.clear()
            templates[key] = flow
        return flow
    return CompiledFlow(speedybox, entry, rule)
