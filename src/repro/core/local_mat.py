"""Per-NF Local MATs and the instrumentation API (§IV-B, Fig. 2).

Each NF owns a :class:`LocalMAT`.  While a flow's initial packets traverse
the original chain, the NF calls the :class:`InstrumentationAPI` —
lightweight wrappers over ``localmat_add_HA`` / ``localmat_add_SF`` /
``register_event`` — to record its per-flow behaviour *without changing
the original processing logic*.  A :class:`NullInstrumentationAPI` with
the same surface lets the very same NF code run un-instrumented as the
baseline (original-chain) configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.actions import HeaderAction
from repro.core.event_table import Event, EventTable
from repro.core.state_function import PayloadClass, StateFunction, StateFunctionBatch
from repro.net.packet import Packet
from repro.platform.costs import CycleMeter, NULL_METER, Operation


class LocalRule:
    """One flow's record in one NF's Local MAT.

    ``header_actions`` keeps recording order (an NF may e.g. decap then
    modify); ``sf_batch`` is the ordered queue of state functions (§IV-B
    "we use a queue data structure to maintain the sequence").
    """

    __slots__ = ("fid", "header_actions", "sf_batch", "event_count", "hits")

    def __init__(self, fid: int, nf_name: str):
        self.fid = fid
        self.header_actions: List[HeaderAction] = []
        self.sf_batch = StateFunctionBatch(nf_name)
        self.event_count = 0
        self.hits = 0

    def __repr__(self) -> str:
        return (
            f"<LocalRule fid={self.fid} ha={len(self.header_actions)} "
            f"sf={len(self.sf_batch)} ev={self.event_count}>"
        )


class LocalMAT:
    """The stateful Match-Action Table instrumented into one NF."""

    def __init__(self, nf_name: str, event_table: Optional[EventTable] = None):
        self.nf_name = nf_name
        self.event_table = event_table
        self._rules: Dict[int, LocalRule] = {}
        self.records_ha = 0
        self.records_sf = 0

    def rule_for(self, fid: int) -> Optional[LocalRule]:
        return self._rules.get(fid)

    def __contains__(self, fid: int) -> bool:
        return fid in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def begin_recording(self, fid: int) -> LocalRule:
        """Start (or restart) recording the flow's rule.

        Every slow-path traversal rebuilds the rule from scratch so that
        handshake packets and post-event re-walks never accumulate
        duplicate actions or stale events.
        """
        if self.event_table is not None:
            self.event_table.clear_nf_flow(fid, self.nf_name)
        rule = LocalRule(fid, self.nf_name)
        self._rules[fid] = rule
        return rule

    def _rule(self, fid: int) -> LocalRule:
        rule = self._rules.get(fid)
        if rule is None:
            rule = LocalRule(fid, self.nf_name)
            self._rules[fid] = rule
        return rule

    def add_header_action(self, fid: int, action: HeaderAction) -> None:
        self._rule(fid).header_actions.append(action)
        self.records_ha += 1

    def add_state_function(self, fid: int, function: StateFunction) -> None:
        self._rule(fid).sf_batch.add(function)
        self.records_sf += 1

    def replace_header_actions(self, fid: int, actions: List[HeaderAction]) -> None:
        """Install a new action list (event updates, §V-C1)."""
        self._rule(fid).header_actions = list(actions)

    def replace_state_functions(self, fid: int, functions: List[StateFunction]) -> None:
        rule = self._rule(fid)
        rule.sf_batch = rule.sf_batch.clone_with(functions)

    def delete_flow(self, fid: int) -> bool:
        """FIN/RST cleanup: drop the rule and free its memory (§VI-B)."""
        return self._rules.pop(fid, None) is not None

    # -- migration support (repro.scale) -------------------------------------

    def export_flow(self, fid: int) -> Optional[LocalRule]:
        """Detach and return the flow's rule for migration."""
        return self._rules.pop(fid, None)

    def import_flow(self, rule: LocalRule) -> None:
        """Adopt a migrated flow's rule (handlers already rebound)."""
        self._rules[rule.fid] = rule

    def flows(self) -> Tuple[int, ...]:
        return tuple(self._rules)

    def __repr__(self) -> str:
        return f"<LocalMAT {self.nf_name}: {len(self._rules)} flows>"


class InstrumentationAPI:
    """The per-NF view of SpeedyBox's APIs (Fig. 2).

    One instance is bound to (NF, its LocalMAT, the shared EventTable).
    Methods use Pythonic names; the exact paper spellings are provided as
    aliases (``localmat_add_HA`` etc.) for one-to-one code reading.
    """

    #: Instrumented NFs check this to skip recording work in baseline runs.
    recording = True

    def __init__(self, local_mat: LocalMAT, event_table: EventTable):
        self.local_mat = local_mat
        self.event_table = event_table
        #: The framework points this at the current packet's meter so the
        #: (small) recording overhead is charged to the right stage.
        self.meter: CycleMeter = NULL_METER

    def nf_extract_fid(self, packet: Packet) -> int:
        """Read the FID the Packet Classifier attached to the packet."""
        fid = packet.metadata.get("fid")
        if fid is None:
            raise KeyError("packet carries no FID metadata; did it bypass the classifier?")
        return fid

    def add_header_action(self, fid: int, action: HeaderAction) -> None:
        """Record a header action for the flow (``localmat_add_HA``)."""
        self.meter.charge(Operation.MAT_RECORD_HA)
        self.local_mat.add_header_action(fid, action)

    def add_state_function(
        self,
        fid: int,
        handler: Callable,
        payload_class: PayloadClass,
        args: Tuple = (),
        name: str = "",
    ) -> None:
        """Record a state-function handler (``localmat_add_SF``)."""
        self.meter.charge(Operation.MAT_RECORD_SF)
        function = StateFunction(
            handler,
            payload_class,
            args=args,
            name=name,
            nf_name=self.local_mat.nf_name,
        )
        self.local_mat.add_state_function(fid, function)

    def register_event(
        self,
        fid: int,
        condition_handler: Callable[..., bool],
        args: Tuple = (),
        update_action: Optional[HeaderAction] = None,
        update_function_handler: Optional[Callable] = None,
        update_state_functions: Optional[List[StateFunction]] = None,
        one_shot: bool = True,
    ) -> Event:
        """Register a runtime event for the flow (``register_event``)."""
        self.meter.charge(Operation.EVENT_REGISTER)
        event = Event(
            fid=fid,
            nf_name=self.local_mat.nf_name,
            condition=condition_handler,
            args=args,
            update_action=update_action,
            update_function=update_function_handler,
            update_state_functions=update_state_functions,
            one_shot=one_shot,
        )
        self.event_table.register(event)
        rule = self.local_mat.rule_for(fid)
        if rule is not None:
            rule.event_count += 1
        return event

    # -- exact paper spellings (Fig. 2) -------------------------------------

    localmat_add_HA = add_header_action
    localmat_add_SF = add_state_function


class BufferedInstrumentationAPI(InstrumentationAPI):
    """Records to private buffers instead of the Local MAT (setup memo).

    The batch engine's memoized first-packet path runs the NFs against
    this API so it can inspect *what* the flow recorded before touching
    any table: if the recording is header-actions-only it may be a cache
    hit on a previously consolidated, behaviourally identical flow.  The
    framework then materializes the buffers into the real Local MATs
    (identical table state and counters either way) and either replays
    the memoized consolidation or falls through to the normal one.

    Meter charges are identical to :class:`InstrumentationAPI` — the NFs
    cannot tell which API they ran against.
    """

    def __init__(self, local_mat: LocalMAT, event_table: EventTable):
        super().__init__(local_mat, event_table)
        self.actions: List[HeaderAction] = []
        self.functions: List[StateFunction] = []
        self.events: List[Event] = []

    def reset(self) -> None:
        self.actions = []
        self.functions = []
        self.events = []

    def add_header_action(self, fid: int, action: HeaderAction) -> None:
        self.meter.charge(Operation.MAT_RECORD_HA)
        self.actions.append(action)

    def add_state_function(
        self,
        fid: int,
        handler: Callable,
        payload_class: PayloadClass,
        args: Tuple = (),
        name: str = "",
    ) -> None:
        self.meter.charge(Operation.MAT_RECORD_SF)
        self.functions.append(
            StateFunction(
                handler,
                payload_class,
                args=args,
                name=name,
                nf_name=self.local_mat.nf_name,
            )
        )

    def register_event(
        self,
        fid: int,
        condition_handler: Callable[..., bool],
        args: Tuple = (),
        update_action: Optional[HeaderAction] = None,
        update_function_handler: Optional[Callable] = None,
        update_state_functions: Optional[List[StateFunction]] = None,
        one_shot: bool = True,
    ) -> Event:
        # The Event object is created eagerly (the NF may keep the
        # handle) but registered with the Event Table post-run, in the
        # same chain order the live API would have produced — safe
        # because events are only *checked* on the fast path, never
        # during the recording traversal itself.
        self.meter.charge(Operation.EVENT_REGISTER)
        event = Event(
            fid=fid,
            nf_name=self.local_mat.nf_name,
            condition=condition_handler,
            args=args,
            update_action=update_action,
            update_function=update_function_handler,
            update_state_functions=update_state_functions,
            one_shot=one_shot,
        )
        self.events.append(event)
        return event

    localmat_add_HA = add_header_action
    localmat_add_SF = add_state_function


class NullInstrumentationAPI(InstrumentationAPI):
    """No-op API used when running the original, un-consolidated chain.

    Keeps the NF code identical between baseline and SpeedyBox runs — the
    add-* calls simply record nothing, mirroring an NF compiled without
    the SpeedyBox instrumentation.
    """

    recording = False

    def __init__(self):  # deliberately no backing tables
        self.local_mat = None
        self.event_table = None
        self.meter = NULL_METER

    def nf_extract_fid(self, packet: Packet) -> int:
        return packet.metadata.get("fid", -1)

    def add_header_action(self, fid: int, action: HeaderAction) -> None:
        return None

    def add_state_function(self, fid, handler, payload_class, args=(), name="") -> None:
        return None

    def register_event(
        self,
        fid,
        condition_handler,
        args=(),
        update_action=None,
        update_function_handler=None,
        update_state_functions=None,
        one_shot=True,
    ):
        return None

    localmat_add_HA = add_header_action
    localmat_add_SF = add_state_function
