"""The Event Table (§V-C1, Fig. 3).

An *event* is an NF-registered (condition → update) pair attached to a
flow: when the condition over NF internal state becomes true, the flow's
header action and/or state functions must change, and the Global MAT rule
must be re-consolidated.  Events are how SpeedyBox keeps the fast path
correct for stateful NFs whose behaviour mutates mid-flow (Observation 2,
§V-A) — e.g. Maglev rerouting a flow when its backend fails, or a DoS
preventer flipping a flow from MODIFY to DROP when a SYN counter crosses
a threshold.

Conditions are checked (a) before a subsequent packet uses the cached
rule, and (b) immediately after state-function batches run — "as soon as
the associated states have been updated".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.actions import HeaderAction
from repro.core.state_function import StateFunction
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY

ConditionHandler = Callable[..., bool]
UpdateFunctionHandler = Callable[..., Optional[HeaderAction]]


class Event:
    """One registered event (the ``register_event`` record of Fig. 2)."""

    __slots__ = (
        "fid",
        "nf_name",
        "condition",
        "args",
        "update_action",
        "update_function",
        "update_state_functions",
        "one_shot",
        "triggered",
        "trigger_count",
    )

    def __init__(
        self,
        fid: int,
        nf_name: str,
        condition: ConditionHandler,
        args: Tuple = (),
        update_action: Optional[HeaderAction] = None,
        update_function: Optional[UpdateFunctionHandler] = None,
        update_state_functions: Optional[List[StateFunction]] = None,
        one_shot: bool = True,
    ):
        if not callable(condition):
            raise TypeError(f"condition handler must be callable, got {condition!r}")
        if update_action is None and update_function is None and update_state_functions is None:
            raise ValueError("an event needs an update action, update function, or both")
        self.fid = fid
        self.nf_name = nf_name
        self.condition = condition
        self.args = tuple(args)
        self.update_action = update_action
        self.update_function = update_function
        self.update_state_functions = update_state_functions
        self.one_shot = one_shot
        self.triggered = False
        self.trigger_count = 0

    @property
    def active(self) -> bool:
        return not (self.one_shot and self.triggered)

    def check(self) -> bool:
        """Evaluate the condition handler over the recorded arguments."""
        return bool(self.condition(*self.args))

    def fire(self) -> Optional[HeaderAction]:
        """Mark triggered and run the update function.

        Returns the header action the flow should switch to: the explicit
        ``update_action`` if given, else whatever the update function
        returns (may be None if the update only mutates NF state).
        """
        self.triggered = True
        self.trigger_count += 1
        replacement: Optional[HeaderAction] = None
        if self.update_function is not None:
            replacement = self.update_function(*self.args)
        if self.update_action is not None:
            replacement = self.update_action
        return replacement

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "armed"
        return f"<Event fid={self.fid} nf={self.nf_name} ({state})>"


class EventTable:
    """All registered events, indexed by FID."""

    def __init__(self, metrics: MetricsRegistry = NULL_REGISTRY):
        self._by_fid: Dict[int, List[Event]] = {}
        self.total_registered = 0
        self.total_triggered = 0
        self.total_checks = 0
        self._m_registered = metrics.counter(
            "events_registered_total", "events NFs registered for flows"
        )
        self._m_triggered = metrics.counter(
            "events_triggered_total", "event conditions that fired"
        )
        self._m_checks = metrics.counter(
            "event_checks_total", "condition evaluations on the fast path"
        )

    def register(self, event: Event) -> None:
        self._by_fid.setdefault(event.fid, []).append(event)
        self.total_registered += 1
        self._m_registered.inc()

    def events_for(self, fid: int) -> List[Event]:
        return list(self._by_fid.get(fid, ()))

    def active_event_count(self, fid: int) -> int:
        events = self._by_fid.get(fid)
        if not events:
            return 0
        count = 0
        for event in events:
            if event.active:
                count += 1
        return count

    def clear_flow(self, fid: int) -> None:
        """Remove every event of a closed flow (FIN/RST cleanup, §VI-B)."""
        self._by_fid.pop(fid, None)

    def clear_nf_flow(self, fid: int, nf_name: str) -> None:
        """Drop the events one NF registered for one flow (re-recording)."""
        events = self._by_fid.get(fid)
        if not events:
            return
        remaining = [event for event in events if event.nf_name != nf_name]
        if remaining:
            self._by_fid[fid] = remaining
        else:
            del self._by_fid[fid]

    # -- migration support (repro.scale) -------------------------------------

    def export_flow(self, fid: int) -> List[Event]:
        """Detach and return every event of the flow for migration.

        Trigger state (``triggered``/``trigger_count``) travels with each
        event, so a one-shot that already fired stays spent on the target.
        """
        return self._by_fid.pop(fid, [])

    def import_flow(self, fid: int, events: List[Event]) -> None:
        """Adopt a migrated flow's events (handlers already rebound)."""
        if not events:
            return
        self._by_fid.setdefault(fid, []).extend(events)

    def check_fid(self, fid: int) -> List[Tuple[Event, Optional[HeaderAction]]]:
        """Evaluate every active event of ``fid``; fire the matching ones.

        Returns (event, replacement header action) pairs for each event
        that fired, in registration order.  The caller (the framework)
        installs replacements in the owning NF's Local MAT and
        re-consolidates the Global MAT rule.
        """
        fired: List[Tuple[Event, Optional[HeaderAction]]] = []
        for event in self._by_fid.get(fid, ()):
            if not event.active:
                continue
            self.total_checks += 1
            self._m_checks.inc()
            if event.check():
                replacement = event.fire()
                self.total_triggered += 1
                self._m_triggered.inc()
                fired.append((event, replacement))
        return fired

    def __len__(self) -> int:
        return sum(len(events) for events in self._by_fid.values())

    def __repr__(self) -> str:
        return f"<EventTable {len(self)} events, {self.total_triggered} triggered>"
