"""The paper's primary contribution: cross-NF runtime consolidation.

Components (mapping to the paper's sections):

- :mod:`repro.core.actions` — the five standardised header actions (§IV-A1).
- :mod:`repro.core.state_function` — state functions and batches (§IV-A2).
- :mod:`repro.core.local_mat` — per-NF Local MAT + instrumentation APIs
  (§IV-B, Fig. 2).
- :mod:`repro.core.consolidation` — header-action consolidation (§V-B).
- :mod:`repro.core.parallel` — state-function batch parallelism (§V-C2,
  Table I).
- :mod:`repro.core.event_table` — the Event Table (§V-C1, Fig. 3).
- :mod:`repro.core.global_mat` — the Global MAT (§V).
- :mod:`repro.core.classifier` — the Packet Classifier and FID scheme
  (§III, §VI-B).
- :mod:`repro.core.framework` — the SpeedyBox runtime (§III, Fig. 1).
"""

from repro.core.actions import (
    Decap,
    Drop,
    Encap,
    FieldOp,
    Forward,
    HeaderAction,
    HeaderActionKind,
    Modify,
)
from repro.core.classifier import FID_BITS, PacketClassifier, fid_of
from repro.core.consolidation import ConsolidatedAction, consolidate_header_actions
from repro.core.event_table import Event, EventTable
from repro.core.director import DirectedReport, ServiceDirector, SteeringRule
from repro.core.framework import FlowRecord, ServiceChain, SpeedyBox
from repro.core.global_mat import GlobalMAT, GlobalRule
from repro.core.inspector import describe_rule, dump_global_mat, lookup_flow_rule
from repro.core.verification import (
    MigrationVerificationReport,
    VerificationReport,
    verify_equivalence,
    verify_equivalence_migration,
)
from repro.core.local_mat import InstrumentationAPI, LocalMAT, LocalRule
from repro.core.parallel import ParallelSchedule, batches_parallelizable, build_schedule
from repro.core.state_function import PayloadClass, StateFunction, StateFunctionBatch

__all__ = [
    "ConsolidatedAction",
    "Decap",
    "DirectedReport",
    "Drop",
    "Encap",
    "Event",
    "EventTable",
    "FID_BITS",
    "FieldOp",
    "FlowRecord",
    "Forward",
    "GlobalMAT",
    "GlobalRule",
    "HeaderAction",
    "HeaderActionKind",
    "InstrumentationAPI",
    "LocalMAT",
    "LocalRule",
    "MigrationVerificationReport",
    "Modify",
    "PacketClassifier",
    "ParallelSchedule",
    "PayloadClass",
    "ServiceChain",
    "ServiceDirector",
    "SpeedyBox",
    "StateFunction",
    "StateFunctionBatch",
    "SteeringRule",
    "VerificationReport",
    "batches_parallelizable",
    "build_schedule",
    "consolidate_header_actions",
    "describe_rule",
    "dump_global_mat",
    "fid_of",
    "lookup_flow_rule",
    "verify_equivalence",
    "verify_equivalence_migration",
]
