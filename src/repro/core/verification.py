"""Equivalence verification as a library feature.

The paper's §VII-C methodology — inject packets, compare outputs and
state between the original chain and SpeedyBox — is how NF authors gain
confidence in their instrumentation.  :func:`verify_equivalence` packages
it: give it a chain *factory* (fresh NF instances per run, since NFs hold
state) and a packet list, and it runs both configurations in lockstep,
returning a :class:`VerificationReport` of every divergence.

Typical use, from an NF author's test suite::

    report = verify_equivalence(lambda: [MyNF(), Monitor("m")], packets)
    assert report.equivalent, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction

ChainFactory = Callable[[], Sequence[NetworkFunction]]
Intervention = Callable[[ServiceChain, SpeedyBox], None]


@dataclass
class Divergence:
    """One observed difference between the two configurations."""

    index: int
    kind: str  # "drop" | "bytes"
    detail: str

    def __str__(self) -> str:
        return f"packet {self.index}: {self.kind} mismatch — {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of a lockstep equivalence run."""

    packets: int
    divergences: List[Divergence] = field(default_factory=list)
    fast_packets: int = 0
    slow_packets: int = 0
    events_triggered: int = 0

    @property
    def equivalent(self) -> bool:
        return not self.divergences

    @property
    def fast_path_rate(self) -> float:
        total = self.fast_packets + self.slow_packets
        return self.fast_packets / total if total else 0.0

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"{verdict} over {self.packets} packets "
            f"(fast path {100 * self.fast_path_rate:.1f}%, "
            f"{self.events_triggered} events)"
        ]
        lines.extend(str(divergence) for divergence in self.divergences[:10])
        if len(self.divergences) > 10:
            lines.append(f"... and {len(self.divergences) - 10} more")
        return "\n".join(lines)


def verify_equivalence(
    chain_factory: ChainFactory,
    packets: Sequence[Packet],
    interventions: Optional[Dict[int, Intervention]] = None,
    speedybox_kwargs: Optional[dict] = None,
) -> VerificationReport:
    """Run baseline and SpeedyBox over ``packets`` and diff the outputs.

    ``interventions[i]`` (if given) runs against both runtimes right
    before packet ``i`` — the hook for mid-stream scenario changes such
    as failing a load-balancer backend.

    Only packet-level effects are compared (drop decisions and wire
    bytes); NF-internal state is the author's to assert on the returned
    runtimes' NFs — which is why the factory pattern is required.
    """
    interventions = interventions or {}
    baseline = ServiceChain(chain_factory())
    speedybox = SpeedyBox(chain_factory(), **(speedybox_kwargs or {}))

    report = VerificationReport(packets=len(packets))
    base_stream = [packet.clone() for packet in packets]
    sbox_stream = [packet.clone() for packet in packets]

    for index, (base_pkt, sbox_pkt) in enumerate(zip(base_stream, sbox_stream)):
        if index in interventions:
            interventions[index](baseline, speedybox)
        baseline.process(base_pkt)
        speedybox.process(sbox_pkt)

        if base_pkt.dropped != sbox_pkt.dropped:
            report.divergences.append(
                Divergence(
                    index,
                    "drop",
                    f"baseline={'dropped' if base_pkt.dropped else 'forwarded'}, "
                    f"speedybox={'dropped' if sbox_pkt.dropped else 'forwarded'}",
                )
            )
        elif not base_pkt.dropped and base_pkt.serialize() != sbox_pkt.serialize():
            report.divergences.append(
                Divergence(index, "bytes", f"{base_pkt!r} vs {sbox_pkt!r}")
            )

    report.fast_packets = speedybox.fast_packets
    report.slow_packets = speedybox.slow_packets
    report.events_triggered = speedybox.event_table.total_triggered
    return report
