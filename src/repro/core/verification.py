"""Equivalence verification as a library feature.

The paper's §VII-C methodology — inject packets, compare outputs and
state between the original chain and SpeedyBox — is how NF authors gain
confidence in their instrumentation.  :func:`verify_equivalence` packages
it: give it a chain *factory* (fresh NF instances per run, since NFs hold
state) and a packet list, and it runs both configurations in lockstep,
returning a :class:`VerificationReport` of every divergence.

Typical use, from an NF author's test suite::

    report = verify_equivalence(lambda: [MyNF(), Monitor("m")], packets)
    assert report.equivalent, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction

if TYPE_CHECKING:  # pragma: no cover - avoids repro.scale import cycle at runtime
    from repro.scale.migration import MigrationReport

ChainFactory = Callable[[], Sequence[NetworkFunction]]
Intervention = Callable[[ServiceChain, SpeedyBox], None]


@dataclass
class Divergence:
    """One observed difference between the two configurations."""

    index: int
    kind: str  # "drop" | "bytes"
    detail: str

    def __str__(self) -> str:
        return f"packet {self.index}: {self.kind} mismatch — {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of a lockstep equivalence run."""

    packets: int
    divergences: List[Divergence] = field(default_factory=list)
    fast_packets: int = 0
    slow_packets: int = 0
    events_triggered: int = 0

    @property
    def equivalent(self) -> bool:
        return not self.divergences

    @property
    def fast_path_rate(self) -> float:
        total = self.fast_packets + self.slow_packets
        return self.fast_packets / total if total else 0.0

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"{verdict} over {self.packets} packets "
            f"(fast path {100 * self.fast_path_rate:.1f}%, "
            f"{self.events_triggered} events)"
        ]
        lines.extend(str(divergence) for divergence in self.divergences[:10])
        if len(self.divergences) > 10:
            lines.append(f"... and {len(self.divergences) - 10} more")
        return "\n".join(lines)


def verify_equivalence(
    chain_factory: ChainFactory,
    packets: Sequence[Packet],
    interventions: Optional[Dict[int, Intervention]] = None,
    speedybox_kwargs: Optional[dict] = None,
) -> VerificationReport:
    """Run baseline and SpeedyBox over ``packets`` and diff the outputs.

    ``interventions[i]`` (if given) runs against both runtimes right
    before packet ``i`` — the hook for mid-stream scenario changes such
    as failing a load-balancer backend.

    Only packet-level effects are compared (drop decisions and wire
    bytes); NF-internal state is the author's to assert on the returned
    runtimes' NFs — which is why the factory pattern is required.
    """
    interventions = interventions or {}
    baseline = ServiceChain(chain_factory())
    speedybox = SpeedyBox(chain_factory(), **(speedybox_kwargs or {}))

    report = VerificationReport(packets=len(packets))
    base_stream = [packet.clone() for packet in packets]
    sbox_stream = [packet.clone() for packet in packets]

    for index, (base_pkt, sbox_pkt) in enumerate(zip(base_stream, sbox_stream)):
        if index in interventions:
            interventions[index](baseline, speedybox)
        baseline.process(base_pkt)
        speedybox.process(sbox_pkt)

        if base_pkt.dropped != sbox_pkt.dropped:
            report.divergences.append(
                Divergence(
                    index,
                    "drop",
                    f"baseline={'dropped' if base_pkt.dropped else 'forwarded'}, "
                    f"speedybox={'dropped' if sbox_pkt.dropped else 'forwarded'}",
                )
            )
        elif not base_pkt.dropped and base_pkt.serialize() != sbox_pkt.serialize():
            report.divergences.append(
                Divergence(index, "bytes", f"{base_pkt!r} vs {sbox_pkt!r}")
            )

    report.fast_packets = speedybox.fast_packets
    report.slow_packets = speedybox.slow_packets
    report.events_triggered = speedybox.event_table.total_triggered
    return report


@dataclass
class MigrationVerificationReport(VerificationReport):
    """Outcome of the migration variant of the equivalence methodology."""

    migrated_flow: Optional[FiveTuple] = None
    migration: Optional["MigrationReport"] = None
    buffered_packets: int = 0

    def summary(self) -> str:
        lines = [super().summary()]
        if self.migration is not None:
            lines.append(
                f"migration moved {self.migration.total_items()} state item(s) "
                f"for {self.migrated_flow}; {self.buffered_packets} packet(s) "
                f"buffered during the freeze"
            )
        return "\n".join(lines)


def verify_equivalence_migration(
    chain_factory: ChainFactory,
    packets: Sequence[Packet],
    migrate_at: int,
    freeze_for: int = 0,
    flow: Optional[FiveTuple] = None,
    speedybox_kwargs: Optional[dict] = None,
    platform: str = "bess",
) -> MigrationVerificationReport:
    """§VII-C equivalence across a mid-life flow migration.

    Runs the same packets through a single SpeedyBox runtime (reference)
    and through a :class:`~repro.scale.cluster.ScaleCluster` that starts
    with one replica and, just before packet ``migrate_at``, adds an
    *empty* replica (no sharder buckets) and migrates ``flow`` onto it —
    so any divergence is attributable to the migration itself, not to
    resharding.  The flow stays frozen for ``freeze_for`` further packets
    to exercise the buffer-and-replay path; buffered packets are replayed
    on the target replica and still compared byte-for-byte.

    ``flow`` defaults to the five-tuple of ``packets[migrate_at]``.
    Besides drop decisions and wire bytes, the report diffs per-flow NF
    state snapshots (NAT mappings, LB conntrack, IDS flowbits, monitor
    counters, ...) and the runtime counters (fast/slow path totals and
    events triggered) — migration must be invisible to all of them.
    """
    # Imported lazily: repro.scale imports repro.core at module load.
    from repro.scale.cluster import ScaleCluster
    from repro.scale.migration import chain_state_snapshot

    if not 0 <= migrate_at < len(packets):
        raise ValueError(
            f"migrate_at must index into the packet stream, got {migrate_at!r}"
        )
    flow = flow or packets[migrate_at].five_tuple()
    reference = SpeedyBox(chain_factory(), **(speedybox_kwargs or {}))
    cluster = ScaleCluster(
        chain_factory,
        platform=platform,
        replicas=1,
        speedybox=True,
        speedybox_kwargs=speedybox_kwargs,
    )

    ref_stream = [packet.clone() for packet in packets]
    cluster_stream = [packet.clone() for packet in packets]
    for packet in ref_stream:
        reference.process(packet)

    report = MigrationVerificationReport(packets=len(packets), migrated_flow=flow)
    freeze_until = min(migrate_at + max(0, freeze_for), len(packets) - 1)
    dst_rid: Optional[int] = None
    for index, packet in enumerate(cluster_stream):
        if index == migrate_at:
            dst_rid = cluster.scale_out(rebalance=False)
            cluster.begin_migration(flow)
        outcome = cluster.process(packet)
        if outcome is None:
            report.buffered_packets += 1
        if index == freeze_until and dst_rid is not None:
            report.migration, __ = cluster.complete_migration(flow, dst_rid)

    for index, (ref_pkt, cl_pkt) in enumerate(zip(ref_stream, cluster_stream)):
        if ref_pkt.dropped != cl_pkt.dropped:
            report.divergences.append(
                Divergence(
                    index,
                    "drop",
                    f"reference={'dropped' if ref_pkt.dropped else 'forwarded'}, "
                    f"cluster={'dropped' if cl_pkt.dropped else 'forwarded'}",
                )
            )
        elif not ref_pkt.dropped and ref_pkt.serialize() != cl_pkt.serialize():
            report.divergences.append(
                Divergence(index, "bytes", f"{ref_pkt!r} vs {cl_pkt!r}")
            )

    # Per-flow NF state must match between the reference chain and
    # whichever replica now homes each flow.
    for key, home in sorted(cluster.flow_homes().items()):
        ref_state = chain_state_snapshot(reference.nfs, key)
        cluster_state = chain_state_snapshot(cluster.replica(home).runtime.nfs, key)
        if ref_state != cluster_state:
            report.divergences.append(
                Divergence(
                    -1,
                    "state",
                    f"flow {key} on replica {home}: "
                    f"reference={ref_state!r} vs cluster={cluster_state!r}",
                )
            )

    # Runtime counters: a complete migration leaves the fast path intact
    # on the target, so the cluster-wide totals must equal the reference.
    runtimes = [cluster.replica(rid).runtime for rid in sorted(cluster.replicas)]
    totals = {
        "fast_packets": sum(runtime.fast_packets for runtime in runtimes),
        "slow_packets": sum(runtime.slow_packets for runtime in runtimes),
        "events_triggered": sum(
            runtime.event_table.total_triggered for runtime in runtimes
        ),
    }
    expected = {
        "fast_packets": reference.fast_packets,
        "slow_packets": reference.slow_packets,
        "events_triggered": reference.event_table.total_triggered,
    }
    for name, want in expected.items():
        if totals[name] != want:
            report.divergences.append(
                Divergence(
                    -1, "counters", f"{name}: reference={want} vs cluster={totals[name]}"
                )
            )

    report.fast_packets = totals["fast_packets"]
    report.slow_packets = totals["slow_packets"]
    report.events_triggered = totals["events_triggered"]
    return report
