"""The Packet Classifier (§III, §VI-B).

Responsibilities:

- hash the five-tuple into a 20-bit **FID** and attach it to the packet as
  metadata, where it stays consistent along the whole chain even if NFs
  rewrite the five-tuple;
- decide whether a packet is *initial* (traverses the original chain and
  records behaviour) or *subsequent* (takes the Global MAT fast path) —
  the paper defines the initial packet as the first packet after the
  connection is established, so TCP handshake packets always take the
  original path and do not arm the fast path;
- track TCP FIN/RST so closed flows' rules are deleted from the Global
  MAT and all Local MATs.

FID collisions (two live flows hashing to the same 20-bit value) are
detected by remembering the owning five-tuple; collided flows are pinned
to the original path so correctness never depends on hash uniqueness.

The flow table can be bounded (``capacity=``): when a new flow would
exceed it, the oldest-inserted entry is evicted and ``on_evict`` fires so
the runtime tears down everything keyed by that flow (Global MAT rule,
Local MAT rules, events, compiled closure).  Insertion order approximates
LRU without paying a per-packet reorder; long-lived hot flows that out-age
the table simply re-record on their next packet, which is correct because
eviction also uninstalls their fast path.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.net.flow import FiveTuple, PROTO_TCP
from repro.net.headers import TCP_FIN, TCP_RST, TCP_SYN, TCPHeader
from repro.net.packet import Packet
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.platform.costs import CycleMeter, NULL_METER, Operation

FID_BITS = 20
FID_SPACE = 1 << FID_BITS

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


@lru_cache(maxsize=1 << 16)
def fid_of(five_tuple: FiveTuple) -> int:
    """FNV-1a over the packed five-tuple, XOR-folded to 20 bits.

    Deterministic across runs and processes (unlike Python's salted
    ``hash``), so recorded traces replay identically.  Memoized on the
    five-tuple: a steady-state flow hashes once, its million subsequent
    packets hit the LRU (the hash itself walks 13 bytes of FNV-1a in
    pure Python, ~30x the cost of a cache hit).
    """
    data = struct.pack(
        "!IIHHB",
        five_tuple.src_ip,
        five_tuple.dst_ip,
        five_tuple.src_port,
        five_tuple.dst_port,
        five_tuple.protocol,
    )
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    # XOR-fold 64 -> 20 bits.
    folded = value ^ (value >> 20) ^ (value >> 40) ^ (value >> 60)
    return folded & (FID_SPACE - 1)


def fid_column(src_ip, dst_ip, src_port, dst_port, protocol):
    """Vectorized :func:`fid_of` over parallel five-tuple columns.

    Walks the same 13 packed bytes in the same order as the scalar hash
    (FNV-1a is byte-sequential), using uint64 wrap-around multiplies when
    numpy is present, so the returned column is *bit-identical* to
    calling ``fid_of`` per flow — the batch lane relies on that to agree
    with the classifier about collisions.  The fallback loops over
    :func:`fid_of` directly.
    """
    from repro import vector as vec

    if not vec.HAVE_NUMPY:
        return vec.int_column(
            fid_of(
                FiveTuple(
                    int(src_ip[i]),
                    int(dst_ip[i]),
                    int(src_port[i]),
                    int(dst_port[i]),
                    int(protocol[i]),
                )
            )
            for i in range(len(src_ip))
        )
    np = vec.np
    u64 = np.uint64
    prime = u64(_FNV_PRIME)
    value = np.full(len(src_ip), _FNV_OFFSET, dtype=np.uint64)
    # The "!IIHHB" pack order: src_ip and dst_ip big-endian 4 bytes each,
    # then the two big-endian 2-byte ports, then the protocol byte.
    columns = (
        (src_ip, (24, 16, 8, 0)),
        (dst_ip, (24, 16, 8, 0)),
        (src_port, (8, 0)),
        (dst_port, (8, 0)),
        (protocol, (0,)),
    )
    with np.errstate(over="ignore"):
        for column, shifts in columns:
            wide = np.asarray(column, dtype=np.int64)
            for shift in shifts:
                byte = ((wide >> shift) & 0xFF).astype(np.uint64)
                value = (value ^ byte) * prime
        folded = value ^ (value >> u64(20)) ^ (value >> u64(40)) ^ (value >> u64(60))
    return (folded & u64(FID_SPACE - 1)).astype(np.int64)


@dataclass(slots=True)
class FlowEntry:
    """Classifier-side per-flow connection state."""

    fid: int
    five_tuple: FiveTuple
    established: bool = False
    closed: bool = False
    packets: int = 0


@dataclass(slots=True)
class Classification:
    """What the classifier concluded about one packet."""

    fid: int
    entry: Optional[FlowEntry]
    collided: bool = False
    is_handshake: bool = False
    is_closing: bool = False

    @property
    def fast_path_eligible(self) -> bool:
        """May this packet use a cached Global MAT rule, if one exists?"""
        return not (self.collided or self.is_handshake)

    @property
    def may_record(self) -> bool:
        """May this packet's traversal install/refresh the fast path?

        Handshake packets traverse the original chain but must not arm
        the fast path: the paper's "initial packet" is the first packet
        *after* establishment.
        """
        return not (self.collided or self.is_handshake)


class PacketClassifier:
    """FID assignment, connection tracking and flow cleanup."""

    def __init__(
        self,
        metrics: MetricsRegistry = NULL_REGISTRY,
        capacity: Optional[int] = None,
        on_evict: Optional[Callable[[FlowEntry], None]] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"classifier capacity must be >= 1, got {capacity}")
        # An OrderedDict, not a plain dict: eviction pops from the front,
        # and a plain dict's iterator re-walks every tombstoned slot to
        # find the first live entry — after ~100k front-pops each
        # eviction scans an ever-growing dead prefix (quadratic churn).
        # The linked-list order makes popitem(last=False) O(1) forever.
        self._flows: "OrderedDict[int, FlowEntry]" = OrderedDict()
        self.capacity = capacity
        self.on_evict = on_evict
        self.evictions = 0
        self.collisions = 0
        self.packets_classified = 0
        self._m_classified = metrics.counter(
            "classifier_packets_total", "packets assigned a FID"
        )
        self._m_collisions = metrics.counter(
            "classifier_fid_collisions_total", "live-flow 20-bit FID collisions"
        )
        self._m_flows = metrics.gauge(
            "classifier_tracked_flows", "flow entries currently tracked"
        )

    def __len__(self) -> int:
        return len(self._flows)

    def flow(self, fid: int) -> Optional[FlowEntry]:
        return self._flows.get(fid)

    def classify(self, packet: Packet, meter: CycleMeter = NULL_METER) -> Classification:
        """Assign the FID, update connection state, attach metadata."""
        self.packets_classified += 1
        self._m_classified.inc()
        meter.charge(Operation.PARSE)  # the single parse of the fast design
        five_tuple = packet.five_tuple()
        fid = fid_of(five_tuple)
        meter.charge(Operation.FID_HASH)

        entry = self._flows.get(fid)
        if entry is not None and entry.five_tuple != five_tuple:
            # 20-bit collision between live flows: pin to the slow path.
            self.collisions += 1
            self._m_collisions.inc()
            packet.metadata["fid"] = fid
            packet.metadata["fid_collision"] = True
            meter.charge(Operation.METADATA_ATTACH)
            return Classification(fid=fid, entry=entry, collided=True)

        if entry is None:
            if self.capacity is not None and len(self._flows) >= self.capacity:
                self._evict_oldest()
            entry = FlowEntry(fid=fid, five_tuple=five_tuple)
            self._flows[fid] = entry
            self._m_flows.set(len(self._flows))
        entry.packets += 1

        is_handshake = False
        is_closing = False
        if five_tuple.protocol == PROTO_TCP and isinstance(packet.l4, TCPHeader):
            if packet.l4.has_flag(TCP_SYN) and not entry.established:
                is_handshake = True
            elif not entry.established:
                entry.established = True
            if packet.l4.has_flag(TCP_FIN) or packet.l4.has_flag(TCP_RST):
                is_closing = True
                entry.closed = True
        else:
            # Connectionless flows: first packet is already the initial one.
            entry.established = True

        packet.metadata["fid"] = fid
        meter.charge(Operation.METADATA_ATTACH)
        return Classification(
            fid=fid,
            entry=entry,
            is_handshake=is_handshake,
            is_closing=is_closing,
        )

    def detach(self, packet: Packet, meter: CycleMeter = NULL_METER) -> None:
        """Remove the FID metadata as the packet leaves the chain (§VI-B)."""
        packet.metadata.pop("fid", None)
        packet.metadata.pop("fid_collision", None)
        meter.charge(Operation.METADATA_DETACH)

    def _evict_oldest(self) -> None:
        """Drop the oldest-inserted entry to make room for a new flow."""
        __, victim = self._flows.popitem(last=False)
        self.evictions += 1
        self._m_flows.set(len(self._flows))
        if self.on_evict is not None:
            self.on_evict(victim)

    def remove_flow(self, fid: int) -> bool:
        """Forget a closed flow (frees the FID for reuse)."""
        removed = self._flows.pop(fid, None) is not None
        if removed:
            self._m_flows.set(len(self._flows))
        return removed

    # -- migration support (repro.scale) -------------------------------------

    def export_flow(self, fid: int) -> Optional[FlowEntry]:
        """Detach and return the flow's connection state for migration."""
        entry = self._flows.pop(fid, None)
        if entry is not None:
            self._m_flows.set(len(self._flows))
        return entry

    def import_flow(self, entry: FlowEntry) -> None:
        """Adopt a migrated flow's connection state.

        Raises if the FID is already owned by a *different* five-tuple on
        this replica — that collision would silently corrupt both flows.
        """
        existing = self._flows.get(entry.fid)
        if existing is not None and existing.five_tuple != entry.five_tuple:
            raise ValueError(
                f"FID {entry.fid} already tracks {existing.five_tuple}; "
                f"cannot import {entry.five_tuple}"
            )
        self._flows[entry.fid] = entry
        self._m_flows.set(len(self._flows))
