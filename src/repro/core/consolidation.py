"""Header-action consolidation (§V-B).

Input: the chain-ordered list of header actions recorded by each NF's
Local MAT for one flow.  Output: a :class:`ConsolidatedAction` that has
the same end-to-end effect on a packet as applying the list sequentially.

The algorithm walks the action list once:

- **Drop dominance** — one DROP anywhere makes the consolidated result a
  drop (early packet drop, R2).
- **Encap/Decap stack** — encapsulation is simulated with a stack; an
  adjacent encap+decap pair on the same header class cancels.  A decap
  that underflows the stack (removes a header the packet *arrived* with)
  is recorded as a leading decap of the consolidated action.
- **Modify merge** — per-field composition with last-writer-wins for sets
  and additive composition for adjusts (the FieldOp algebra).  This is
  semantically the paper's bit-level formula; :func:`xor_merge_bytes`
  implements the literal P0 ⊕ [(P0⊕P1)|(P0⊕P2)] for validation.
- **Finalisation fields** — checksum/TTL/MAC-style fields are applied at
  the end of the consolidated action so the fast path always emits valid
  packets (the paper's "we modify these fields at the end").

FORWARD is the identity and never stored (§V-B "default action").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.actions import (
    Decap,
    Drop,
    Encap,
    FieldOp,
    Forward,
    HeaderAction,
    HeaderActionKind,
    Modify,
)
from repro.net.packet import Packet, PacketField


class ConsolidationError(Exception):
    """Raised when an action list cannot be consolidated (invalid input)."""


class ConsolidatedAction:
    """The single fast-path action equivalent to a chain of header actions.

    Application order (mirrors what a packet would net-experience):
    leading decaps → merged routing-field modifies → net encaps →
    finalisation-field modifies (TTL/MAC/DSCP) → checksum refresh.
    """

    __slots__ = ("drop", "leading_decaps", "field_ops", "net_encaps", "source_count")

    def __init__(
        self,
        drop: bool = False,
        leading_decaps: Sequence[Decap] = (),
        field_ops: Optional[Dict[PacketField, FieldOp]] = None,
        net_encaps: Sequence[Encap] = (),
        source_count: int = 0,
    ):
        self.drop = drop
        self.leading_decaps: Tuple[Decap, ...] = tuple(leading_decaps)
        self.field_ops: Dict[PacketField, FieldOp] = dict(field_ops or {})
        self.net_encaps: Tuple[Encap, ...] = tuple(net_encaps)
        self.source_count = source_count

    @property
    def is_noop(self) -> bool:
        """True when the consolidated action is pure FORWARD."""
        return not (self.drop or self.leading_decaps or self.field_ops or self.net_encaps)

    @property
    def merged_modify_count(self) -> int:
        """Number of fields the consolidated modify touches (cost driver)."""
        return len(self.field_ops)

    def routing_ops(self) -> Dict[PacketField, FieldOp]:
        return {f: op for f, op in self.field_ops.items() if not f.is_finalisation_field}

    def finalisation_ops(self) -> Dict[PacketField, FieldOp]:
        return {f: op for f, op in self.field_ops.items() if f.is_finalisation_field}

    def apply(self, packet: Packet) -> None:
        """Apply the consolidated action to ``packet`` in place."""
        if self.drop:
            packet.drop()
            return
        for decap in self.leading_decaps:
            decap.apply(packet)
        for field, op in self.routing_ops().items():
            field.write(packet, op.apply(field.read(packet)))
        for encap in self.net_encaps:
            encap.apply(packet)
        for field, op in self.finalisation_ops().items():
            field.write(packet, op.apply(field.read(packet)))
        packet.finalize()

    def compiled(self):
        """A pre-bound single callable equivalent to :meth:`apply`.

        Flattens the decap/modify/encap/finalisation walk into a tuple
        of bound step functions built once per rule, so the fast path
        pays neither the per-call ``routing_ops()``/``finalisation_ops()``
        dict rebuilds nor the enum-accessor indirection of
        :meth:`PacketField.read`/``write``.  Field-write order matches
        :meth:`apply` exactly.
        """
        if self.drop:
            return Packet.drop
        steps = [decap.apply for decap in self.leading_decaps]
        for field, op in self.routing_ops().items():
            steps.append(_bind_field_step(field, op))
        steps.extend(encap.apply for encap in self.net_encaps)
        for field, op in self.finalisation_ops().items():
            steps.append(_bind_field_step(field, op))
        if not steps:
            return Packet.finalize

        def run(packet, _steps=tuple(steps), _finalize=Packet.finalize):
            for step in _steps:
                step(packet)
            _finalize(packet)

        return run

    def __repr__(self) -> str:
        if self.drop:
            return "<ConsolidatedAction DROP>"
        parts = []
        if self.leading_decaps:
            parts.append(f"decap x{len(self.leading_decaps)}")
        if self.field_ops:
            fields = ",".join(sorted(f.value for f in self.field_ops))
            parts.append(f"modify({fields})")
        if self.net_encaps:
            parts.append(f"encap x{len(self.net_encaps)}")
        return f"<ConsolidatedAction {' '.join(parts) or 'FORWARD'}>"


def _bind_field_step(field: PacketField, op: FieldOp):
    """One pre-bound ``field = op(field)`` packet mutation."""
    from repro.net.packet import _FIELD_READERS, _FIELD_WRITERS

    read = _FIELD_READERS[field]
    write = _FIELD_WRITERS[field]
    apply_op = op.apply

    def step(packet):
        write(packet, apply_op(read(packet)))

    return step


def consolidate_header_actions(actions: Iterable[HeaderAction]) -> ConsolidatedAction:
    """Consolidate ``actions`` (chain order) into one equivalent action.

    Raises :class:`ConsolidationError` on malformed inputs (e.g. a typed
    decap that cannot match the preceding encap).
    """
    field_ops: Dict[PacketField, FieldOp] = {}
    encap_stack: List[Encap] = []
    leading_decaps: List[Decap] = []
    count = 0

    for action in actions:
        count += 1
        if isinstance(action, Drop):
            # Drop dominance: the rest of the chain never sees the packet.
            return ConsolidatedAction(drop=True, source_count=count)
        if isinstance(action, Forward):
            continue
        if isinstance(action, Modify):
            for field, op in action.ops.items():
                existing = field_ops.get(field)
                field_ops[field] = existing.then(op) if existing is not None else op
            continue
        if isinstance(action, Encap):
            encap_stack.append(action)
            continue
        if isinstance(action, Decap):
            if encap_stack:
                pushed = encap_stack[-1]
                if not action.matches(pushed):
                    raise ConsolidationError(
                        f"decap {action!r} cannot remove header pushed by {pushed!r}"
                    )
                encap_stack.pop()  # encap+decap on the same header cancel
            else:
                leading_decaps.append(action)
            continue
        raise ConsolidationError(f"unknown header action: {action!r}")

    # Identity ops (e.g. adjust by 0) are dropped so is_noop is meaningful.
    field_ops = {
        field: op
        for field, op in field_ops.items()
        if not (op.set_value is None and op.delta == 0)
    }
    return ConsolidatedAction(
        leading_decaps=leading_decaps,
        field_ops=field_ops,
        net_encaps=encap_stack,
        source_count=count,
    )


def explain_consolidation(actions: Sequence[HeaderAction]) -> List[str]:
    """A human-readable, step-by-step trace of the §V-B algorithm.

    Returns one line per input action describing what the consolidator
    did with it, plus a final summary line — the narration the inspector
    and teaching material use.  Raises the same errors as
    :func:`consolidate_header_actions` on malformed input.
    """
    lines: List[str] = []
    field_ops: Dict[PacketField, FieldOp] = {}
    encap_stack: List[Encap] = []
    leading_decaps: List[Decap] = []

    for index, action in enumerate(actions):
        prefix = f"[{index}] {action!r}: "
        if isinstance(action, Drop):
            lines.append(prefix + "DROP dominates — remaining actions unreachable")
            lines.append("result: drop")
            return lines
        if isinstance(action, Forward):
            lines.append(prefix + "identity, elided")
        elif isinstance(action, Modify):
            for field, op in action.ops.items():
                existing = field_ops.get(field)
                if existing is None:
                    field_ops[field] = op
                    lines.append(prefix + f"records {field.value} <- {op!r}")
                else:
                    field_ops[field] = existing.then(op)
                    lines.append(
                        prefix + f"composes onto {field.value}: {existing!r} then {op!r}"
                    )
        elif isinstance(action, Encap):
            encap_stack.append(action)
            lines.append(prefix + f"pushed (stack depth {len(encap_stack)})")
        elif isinstance(action, Decap):
            if encap_stack:
                pushed = encap_stack[-1]
                if not action.matches(pushed):
                    raise ConsolidationError(
                        f"decap {action!r} cannot remove header pushed by {pushed!r}"
                    )
                encap_stack.pop()
                lines.append(prefix + f"cancels {pushed!r} (stack depth {len(encap_stack)})")
            else:
                leading_decaps.append(action)
                lines.append(prefix + "underflows the stack -> leading decap of an arrival header")
        else:
            raise ConsolidationError(f"unknown header action: {action!r}")

    live_fields = sum(
        1 for op in field_ops.values() if not (op.set_value is None and op.delta == 0)
    )
    lines.append(
        "result: "
        f"{len(leading_decaps)} leading decap(s), "
        f"{live_fields} merged field op(s), "
        f"{len(encap_stack)} net encap(s)"
    )
    return lines


def xor_merge_bytes(original: bytes, outputs: Sequence[bytes]) -> bytes:
    """The paper's literal merge formula for modifies on different fields.

    Given the original packet bytes P0 and per-NF outputs P1..Pn (each the
    result of one modify applied to P0, touching disjoint bit ranges),
    computes  P0 ⊕ [(P0⊕P1) | (P0⊕P2) | ...]  — the merged packet.  Used
    by the property tests to cross-validate the FieldOp algebra.
    """
    if any(len(out) != len(original) for out in outputs):
        raise ValueError("all outputs must have the same length as the original")
    merged_diff = bytes(len(original))
    for out in outputs:
        diff = bytes(a ^ b for a, b in zip(original, out))
        merged_diff = bytes(a | b for a, b in zip(merged_diff, diff))
    return bytes(a ^ b for a, b in zip(original, merged_diff))
