"""Multi-chain service direction.

Production NFV deployments run several service chains side by side and
steer each traffic class to its chain (the IETF SFC model the paper's
Chain 1 / Chain 2 are drawn from).  :class:`ServiceDirector` provides
that layer on top of SpeedyBox: classification rules map flows to named
chains, each chain wrapped in its own independent SpeedyBox runtime with
its own Local/Global MATs and Event Table — consolidation state never
leaks between tenants/classes.

The director is deliberately thin: selection happens once per packet
with the same five-tuple matching the firewall uses, then the chosen
runtime does everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import ProcessReport, ServiceChain, SpeedyBox
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.nf.ipfilter import AclRule

Runtime = Union[ServiceChain, SpeedyBox]


@dataclass
class SteeringRule:
    """Match (AclRule semantics) → chain name."""

    match: AclRule
    chain: str


@dataclass
class DirectedReport:
    """A ProcessReport plus which chain served the packet."""

    chain: str
    report: ProcessReport


class ServiceDirector:
    """Steer flows to one of several independently consolidated chains."""

    def __init__(
        self,
        chains: Dict[str, Sequence[NetworkFunction]],
        rules: Sequence[SteeringRule],
        default_chain: Optional[str] = None,
        enable_speedybox: bool = True,
        max_flows_per_chain: Optional[int] = None,
    ):
        if not chains:
            raise ValueError("the director needs at least one chain")
        self.runtimes: Dict[str, Runtime] = {}
        for name, nfs in chains.items():
            if enable_speedybox:
                self.runtimes[name] = SpeedyBox(nfs, max_flows=max_flows_per_chain)
            else:
                self.runtimes[name] = ServiceChain(nfs)
        for rule in rules:
            if rule.chain not in self.runtimes:
                raise ValueError(f"steering rule targets unknown chain {rule.chain!r}")
        if default_chain is None:
            default_chain = next(iter(chains))
        if default_chain not in self.runtimes:
            raise ValueError(f"unknown default chain {default_chain!r}")
        self.rules: List[SteeringRule] = list(rules)
        self.default_chain = default_chain
        #: flow -> chain pin: a flow must stay on one chain for its lifetime
        #: even if steering rules are edited mid-run.
        self._pins: Dict[FiveTuple, str] = {}
        self.per_chain_packets: Dict[str, int] = {name: 0 for name in self.runtimes}

    def select_chain(self, flow: FiveTuple) -> str:
        """First matching steering rule wins; otherwise the default."""
        pinned = self._pins.get(flow)
        if pinned is not None:
            return pinned
        for rule in self.rules:
            if rule.match.matches(flow):
                return rule.chain
        return self.default_chain

    def process(self, packet: Packet) -> DirectedReport:
        flow = packet.five_tuple()
        chain = self.select_chain(flow)
        self._pins[flow] = chain
        self.per_chain_packets[chain] += 1
        report = self.runtimes[chain].process(packet)
        if getattr(report, "closing", False):
            self._pins.pop(flow, None)
        return DirectedReport(chain=chain, report=report)

    def runtime(self, chain: str) -> Runtime:
        return self.runtimes[chain]

    def add_rule(self, rule: SteeringRule, position: Optional[int] = None) -> None:
        """Insert a steering rule (live flows stay pinned to their chain)."""
        if rule.chain not in self.runtimes:
            raise ValueError(f"steering rule targets unknown chain {rule.chain!r}")
        if position is None:
            self.rules.append(rule)
        else:
            self.rules.insert(position, rule)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-chain runtime statistics (SpeedyBox chains only)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, runtime in self.runtimes.items():
            if isinstance(runtime, SpeedyBox):
                out[name] = runtime.stats()
            else:
                out[name] = {"packets": float(self.per_chain_packets[name])}
        return out

    def reset(self) -> None:
        for runtime in self.runtimes.values():
            runtime.reset()
        self._pins.clear()
        self.per_chain_packets = {name: 0 for name in self.runtimes}
