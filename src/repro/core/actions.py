"""The five standardised header actions (§IV-A1).

The paper standardises NF packet-header behaviour into FORWARD, DROP,
MODIFY, ENCAP and DECAP.  MODIFY is expressed as a set of per-field
:class:`FieldOp` operations; each is either an absolute ``set`` or a
relative ``adjust`` (the latter models TTL decrements, which must compose
additively across NFs during consolidation, §V-B "remaining fields").

FieldOps form a tiny composition algebra used by the consolidation engine:

    (f2 ∘ f1) applied to x  ==  f2(f1(x))

    set(v2)    ∘ anything   == set(v2)
    adjust(d2) ∘ set(v1)    == set(v1 + d2)
    adjust(d2) ∘ adjust(d1) == adjust(d1 + d2)

This field-level algebra is the exact semantics of the paper's XOR merge
P0 ⊕ [(P0⊕P1) | (P0⊕P2)] for modifies touching different fields, plus its
"select the value of the latter" rule for the same field; see
``repro.core.consolidation.xor_merge_bytes`` for a byte-level
implementation of the paper's formula used in the property tests.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional, Tuple, Type, Union

from repro.net.headers import Header
from repro.net.packet import Packet, PacketField


class HeaderActionKind(enum.Enum):
    """The five standardised header-action categories of §IV-A1."""

    FORWARD = "forward"
    DROP = "drop"
    MODIFY = "modify"
    ENCAP = "encap"
    DECAP = "decap"


class FieldOp:
    """A single-field operation: ``set`` to a value or ``adjust`` by a delta."""

    __slots__ = ("set_value", "delta")

    def __init__(self, set_value: Optional[int] = None, delta: int = 0):
        self.set_value = set_value
        self.delta = delta

    @classmethod
    def set(cls, value: int) -> "FieldOp":
        return cls(set_value=value)

    @classmethod
    def adjust(cls, delta: int) -> "FieldOp":
        return cls(delta=delta)

    def apply(self, current: int) -> int:
        if self.set_value is not None:
            return self.set_value + self.delta
        return current + self.delta

    def then(self, later: "FieldOp") -> "FieldOp":
        """Compose: the result behaves as self first, then ``later``."""
        if later.set_value is not None:
            return FieldOp(set_value=later.set_value, delta=later.delta)
        if self.set_value is not None:
            return FieldOp(set_value=self.set_value, delta=self.delta + later.delta)
        return FieldOp(delta=self.delta + later.delta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldOp):
            return NotImplemented
        return (self.set_value, self.delta) == (other.set_value, other.delta)

    def __hash__(self) -> int:
        return hash((self.set_value, self.delta))

    def __repr__(self) -> str:
        if self.set_value is not None and self.delta:
            return f"FieldOp(set={self.set_value}, adjust={self.delta:+d})"
        if self.set_value is not None:
            return f"FieldOp(set={self.set_value})"
        return f"FieldOp(adjust={self.delta:+d})"


class HeaderAction:
    """Base class of the five standardised header actions."""

    kind: HeaderActionKind

    def apply(self, packet: Packet) -> None:
        """Execute this action on ``packet`` in place."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Forward(HeaderAction):
    """Forward the packet unmodified (the default action, §V-B)."""

    kind = HeaderActionKind.FORWARD

    def apply(self, packet: Packet) -> None:
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Forward)

    def __hash__(self) -> int:
        return hash(HeaderActionKind.FORWARD)


class Drop(HeaderAction):
    """Drop the packet: mark the descriptor nil and stop processing."""

    kind = HeaderActionKind.DROP

    def apply(self, packet: Packet) -> None:
        packet.drop()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Drop)

    def __hash__(self) -> int:
        return hash(HeaderActionKind.DROP)


class Modify(HeaderAction):
    """Rewrite header fields.

    ``ops`` maps :class:`PacketField` to :class:`FieldOp`.  Convenience
    constructor: ``Modify.set(dst_ip=..., dst_port=...)`` with field names
    matching ``PacketField`` values; TTL decrement: ``Modify.ttl_dec()``.
    """

    kind = HeaderActionKind.MODIFY

    __slots__ = ("ops",)

    def __init__(self, ops: Mapping[PacketField, FieldOp]):
        if not ops:
            raise ValueError("Modify with no field operations; use Forward instead")
        self.ops: Dict[PacketField, FieldOp] = dict(ops)

    @classmethod
    def set(cls, **fields: int) -> "Modify":
        """Modify that sets the named fields, e.g. Modify.set(dst_port=80)."""
        ops = {PacketField(name): FieldOp.set(value) for name, value in fields.items()}
        return cls(ops)

    @classmethod
    def adjust(cls, **fields: int) -> "Modify":
        """Modify that adjusts the named fields by deltas."""
        ops = {PacketField(name): FieldOp.adjust(delta) for name, delta in fields.items()}
        return cls(ops)

    @classmethod
    def ttl_dec(cls, hops: int = 1) -> "Modify":
        """The router-style TTL decrement."""
        return cls({PacketField.TTL: FieldOp.adjust(-hops)})

    def apply(self, packet: Packet) -> None:
        for field, op in self.ops.items():
            field.write(packet, op.apply(field.read(packet)))

    def touched_fields(self) -> Tuple[PacketField, ...]:
        return tuple(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Modify):
            return NotImplemented
        return self.ops == other.ops

    def __hash__(self) -> int:
        return hash(frozenset(self.ops.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{field.value}={op!r}" for field, op in sorted(self.ops.items(), key=lambda kv: kv[0].value))
        return f"Modify({parts})"


class Encap(HeaderAction):
    """Push an encapsulation header (template cloned per packet)."""

    kind = HeaderActionKind.ENCAP

    __slots__ = ("template",)

    def __init__(self, template: Header):
        self.template = template

    def apply(self, packet: Packet) -> None:
        packet.push_encap(self.template.clone())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Encap):
            return NotImplemented
        return self.template == other.template

    def __hash__(self) -> int:
        return hash((HeaderActionKind.ENCAP, self.template))

    def __repr__(self) -> str:
        return f"Encap({self.template!r})"


class Decap(HeaderAction):
    """Pop the innermost encapsulation header.

    ``expected_type`` optionally asserts the header class being removed —
    a decap NF knows what it strips (e.g. the VPN endpoint removes an AH).
    """

    kind = HeaderActionKind.DECAP

    __slots__ = ("expected_type",)

    def __init__(self, expected_type: Optional[Type[Header]] = None):
        self.expected_type = expected_type

    def apply(self, packet: Packet) -> None:
        header = packet.pop_encap()
        if self.expected_type is not None and not isinstance(header, self.expected_type):
            raise ValueError(
                f"decap expected {self.expected_type.__name__}, found {type(header).__name__}"
            )

    def matches(self, encap: Encap) -> bool:
        """True if this decap removes exactly what ``encap`` pushed."""
        if self.expected_type is None:
            return True
        return isinstance(encap.template, self.expected_type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Decap):
            return NotImplemented
        return self.expected_type == other.expected_type

    def __hash__(self) -> int:
        return hash((HeaderActionKind.DECAP, self.expected_type))

    def __repr__(self) -> str:
        expected = self.expected_type.__name__ if self.expected_type else "any"
        return f"Decap({expected})"


ActionLike = Union[HeaderAction, Iterable[HeaderAction]]


def apply_sequentially(packet: Packet, actions: Iterable[HeaderAction]) -> None:
    """Reference semantics: apply actions in order, stopping at a drop.

    This is the *original chain* behaviour that consolidation must be
    equivalent to (minus the early-drop optimisation); the property tests
    compare :func:`repro.core.consolidation.consolidate_header_actions`
    against it.
    """
    for action in actions:
        action.apply(packet)
        if packet.dropped:
            return
