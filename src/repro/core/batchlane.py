"""The whole-batch fast-path lane (batch engine, part 2).

The per-packet engine — even with compiled flow closures — pays Python
dispatch per packet: materialize a :class:`~repro.net.packet.Packet`,
probe the compiled table, run the closure.  At 10M packets that is tens
of seconds of interpreter overhead for work whose *outcome* is already
known per flow.  The batch lane removes the per-packet layer entirely
for the steady-state majority of a :class:`~repro.traffic.columnar.PacketBatch`:

- a chunked walk over the ``kind``/``flow_index`` columns splits the
  batch into *steady runs* (runs of data packets whose flows are
  believed compiled) and scalar packets (everything else);
- each steady run is validated when it is *appended*: every distinct
  flow's compiled closure is checked once and cached for the rest of
  the batch (``_vmask``/``_vclone``), so a warm run costs one vectorized
  mask gather.  Validated runs accumulate in a **deferred region** —
  no per-flow bookkeeping yet, just the ``(lo, hi)`` slice;
- the region is **flushed** — per-flow packet counts, rule hits, drop
  totals and Global-MAT LRU touches in last-occurrence order, all from
  one ``np.unique`` pass over the concatenated slices — only when a
  scalar packet that could observe or mutate runtime state is about to
  run, and once at the end of the batch;
- scalar packets that provably cannot interact with deferred state —
  data packets of FID-*collided* flows, which the classifier pins to
  the slow path before touching any table — do **not** flush, so a few
  collided flows sprinkled through millions of steady packets no longer
  fragment the region into per-flow crumbs;
- any other scalar packet — first packets, handshake and FIN/RST,
  fast-path misses, invalidated closures — flushes, then is
  materialized and handed to ``SpeedyBox.process``, the unmodified
  oracle;
- first packets of *flow-setup-oblivious* chains skip even that: after
  one scalar first packet establishes a template, subsequent new flows
  are **bulk admitted** — classifier entry, Local MAT records, Global
  MAT rule (:meth:`~repro.core.global_mat.GlobalMAT.install_prebuilt`)
  and the compiled closure (cloned straight from the template's, the
  setup-memo contract) are installed directly, operation-for-operation
  what the memoized slow path would have done, without materializing a
  packet or running an NF.

Correctness contract: a batch-lane run leaves the runtime in the same
state — tables, counters, audit stream, LRU order — and produces the
same :class:`~repro.platform.base.LoadResult` (exact float equality on
every latency) as feeding ``batch.packet_view()`` through the legacy
per-packet path.  Three rules keep that true:

- validation happens at append time and every operation that could
  invalidate a closure flushes the region first, so nothing in a
  deferred region can go stale before its flush: the runtime feeds
  every compiled-lane mutation's FID through ``_lane_invalidations``
  (drained before each append), and the one mutation that feed cannot
  see — an NF activating an event on a cached FID mid-traversal — is
  caught by an event-table probe after every scalar packet;
- deferred serving performs exactly the per-flow effects the per-packet
  sequence would have had: counters are commutative sums, no audit is
  emitted on the fast lane, and one LRU touch per flow in
  last-occurrence order equals the final recency order of the
  per-packet touches (collided scalars between runs never touch the
  LRU, so deferring across them reorders nothing);
- bulk admission mirrors the memoized slow path exactly (same inserts,
  same eviction check, same audit events in the same order) and is
  gated on every NF declaring ``setup_flow_oblivious`` — the contract
  that first-packet behaviour is a pure function of packet shape.

The lane needs no numpy: without it the chunked walk degenerates to a
per-packet loop over the same state machine (runs of length one, no
deferral), so results are identical either way — numpy only buys speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import vector as vec
from repro.core.classifier import FlowEntry, fid_column, fid_of
from repro.core.framework import PathTaken, SpeedyBox
from repro.core.global_mat import GlobalRule
from repro.core.local_mat import LocalRule
from repro.core.state_function import StateFunctionBatch
from repro.net.flow import FiveTuple, PROTO_UDP
from repro.obs.registry import NULL_INSTRUMENT
from repro.traffic.columnar import KIND_DATA, PacketBatch

#: packets per chunk of the steady-mask walk (numpy path)
_CHUNK = 32768


class BulkTemplate:
    """Everything needed to admit a new flow without running the chain."""

    __slots__ = (
        "rule",
        "compiled",
        "ran",
        "mat_plumbing",
        "dropped",
        "original_pid",
        "steady_pid",
        "steady_plan",
        "waves",
        "drop_action",
    )

    def __init__(self, rule, compiled, ran, mat_plumbing, dropped, original_pid,
                 steady_pid, steady_plan, waves, drop_action):
        #: the template GlobalRule whose artifacts install_prebuilt shares
        self.rule = rule
        #: the template flow's compiled closure; admitted flows clone it
        #: (``clone_for``), exactly what ``compile_flow`` under the setup
        #: memo would return, minus the dispatch
        self.compiled = compiled
        #: how many NFs ran before the chain ended (drop templates stop early)
        self.ran = ran
        #: per-NF ``(local_mat, actions_or_None, action_count)`` — the
        #: record state every admitted flow receives, prebound so the
        #: admission loop is free of name lookups
        self.mat_plumbing = mat_plumbing
        self.dropped = dropped
        #: plan-table id of the first-packet stage plan
        self.original_pid = original_pid
        #: plan-table id (and the shared plan object) of the steady plan
        self.steady_pid = steady_pid
        self.steady_plan = steady_plan
        #: audit payload constants (template-invariant by construction)
        self.waves = waves
        self.drop_action = drop_action


class BatchLane:
    """One batch run's lane state; construct per ``run_load`` call."""

    def __init__(self, platform, batch: PacketBatch):
        self.platform = platform
        self.batch = batch
        self.runtime = platform.runtime
        self.dropped = 0
        #: packets served by whole-run array ops (lane introspection)
        self.span_packets = 0
        #: flows installed by bulk admission (lane introspection)
        self.admitted = 0
        #: the stage-plan table the replay consumes; ``plan_ids[i]``
        #: indexes into it.  Plans are deduplicated by value, so the
        #: table stays tiny no matter how many flows the batch holds.
        self.table: List[list] = []
        self._pid_by_value: Dict[tuple, int] = {}
        flow_count = batch.flow_count
        n = len(batch)
        #: per-flow hint: 1 = last seen compiled-steady.  A stale hint
        #: is always safe — 0 routes to the scalar oracle, 1 is
        #: re-validated against the live compiled table at append.
        #: Bytearray-backed with a zero-copy numpy view: scalar stores
        #: (one per admission) hit the bytearray, vector gathers (one
        #: per chunk) go through the view over the same memory.
        self.fstat = bytearray(flow_count)
        #: 1 = ``_vclone[flow]`` holds a closure validated this run
        #: and not invalidated since (the invalidation feed clears it)
        self._vmask = bytearray(flow_count)
        if vec.HAVE_NUMPY:
            np = vec.np
            self._fstat_np = np.frombuffer(self.fstat, dtype=np.uint8)
            self._vmask_np = np.frombuffer(self._vmask, dtype=np.uint8)
            #: per-flow steady plan id, set when the flow's clone is cached
            self.fplan = np.zeros(flow_count, dtype=np.int32)
            self.plan_ids = np.zeros(n, dtype=np.int32)
            self.kind_arr = np.ascontiguousarray(batch.kind)
            self.flow_arr = np.ascontiguousarray(batch.flow_index)
        else:
            self.fplan = [0] * flow_count
            self.plan_ids = [0] * n
            self.kind_arr = batch.kind
            self.flow_arr = batch.flow_index
        self._vclone: List[object] = [None] * flow_count
        #: validated-FID index: which flow slots must be dropped when the
        #: runtime reports the FID's compiled lane mutated (a list — FID
        #: collisions can map one FID to several five-tuple slots)
        self._flows_of_fid: Dict[int, list] = {}
        #: validated steady runs awaiting their per-flow flush
        self._deferred: List[Tuple[int, int]] = []
        #: flow slots pinned to the slow path by a FID collision; their
        #: data packets are deferral-safe (no table or LRU touches)
        self._collided: set = set()
        #: the runtime's invalidation feed while this run is active
        self._inval: Optional[list] = None
        #: lazily built fid-per-flow column (bulk admission only)
        self._fids = None
        #: the one bulk template per run; built from the first qualifying
        #: scalar first packet, then reused for every admitted flow
        self.template: Optional[BulkTemplate] = None
        self._admit_plan_cache: Optional[tuple] = None
        proto = batch.flow_proto
        self._proto_of = proto.item if hasattr(proto, "item") else proto.__getitem__
        runtime = self.runtime
        self._clear_nf_flow = runtime.event_table.clear_nf_flow
        self._events_by_fid = runtime.event_table._by_fid
        self._local_rule_dicts = [mat._rules for mat in runtime.local_mats.values()]
        #: the classifier's eviction callback is exactly SpeedyBox's own
        #: teardown (no subclass override, no external wrapper), so bulk
        #: admission may inline it — five dict pops instead of five
        #: method frames per eviction
        on_evict = runtime.classifier.on_evict
        self._plain_evict = (
            getattr(on_evict, "__self__", None) is runtime
            and getattr(on_evict, "__func__", None)
            is SpeedyBox._on_classifier_evicted
        )
        #: the lane only engages on uninstrumented runs, so the metric
        #: instruments are usually the shared no-op — admission skips the
        #: no-op calls outright (behavior-identical: a null set/inc does
        #: nothing by definition)
        self._null_metrics = runtime.classifier._m_flows is NULL_INSTRUMENT
        #: sampled flow-span recorder, when the platform carries one.
        #: Sampled flows are kept off the array path (``fstat`` stays 0)
        #: so every one of their packets reaches the scalar oracle and
        #: records real per-stage spans; unsampled (or span-capped)
        #: flows keep full lane speed.  No audit events, no result
        #: change — the lane stays equivalent to the per-packet path
        #: with the same recorder attached.
        self.spans = platform.spans
        #: deferred-region flush count (lane introspection + metrics)
        self.flushes = 0
        #: flow five-tuple columns as plain Python lists, built on first
        #: bulk admission: list indexing beats per-field ndarray .item()
        #: calls when admissions number in the hundreds of thousands
        self._ft_lists = None
        self.bulk_ok = (
            runtime.enable_consolidation
            and batch._payloads is None
            and all(nf.setup_flow_oblivious for nf in runtime.nfs)
        )

    # -- driving the batch ---------------------------------------------------

    def run(self) -> Tuple[List[list], object, int]:
        """Process the whole batch; returns (plan table, plan ids, dropped)."""
        n = len(self.batch)
        if vec.HAVE_NUMPY:
            runtime = self.runtime
            previous_feed = runtime._lane_invalidations
            runtime._lane_invalidations = self._inval = []
            # Defer cyclic GC for the duration of the run: a million
            # admissions allocate tens of millions of long-lived objects
            # (entries, rules, clones), and every full collection walks
            # the entire heap — ~30% of a 10M-packet run.  The lane
            # allocates no reference cycles of its own; whatever cyclic
            # garbage the run produces is collected at the caller's next
            # collection once the prior GC state is restored.
            import gc

            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                self._run_numpy(n)
            finally:
                runtime._lane_invalidations = previous_feed
                if gc_was_enabled:
                    gc.enable()
        else:
            # The fallback reaches bulk admission too (template capture
            # is engine-agnostic), so it needs the same invalidation
            # feed the inlined eviction teardown appends to; nothing
            # caches closures here, so the feed is never drained.
            runtime = self.runtime
            previous_feed = runtime._lane_invalidations
            runtime._lane_invalidations = self._inval = []
            try:
                for index in range(n):
                    self._fallback_packet(index)
            finally:
                runtime._lane_invalidations = previous_feed
        template = self.template
        if template is not None and self.admitted:
            for nf in self.runtime.nfs[: template.ran]:
                nf.admit_flows(self.admitted)
        self._publish_lane_metrics()
        return self.table, self.plan_ids, self.dropped

    def _publish_lane_metrics(self) -> None:
        """One registry update per batch (never per packet).

        Published into the *runtime's* registry — the platform registry
        must be off for the lane to engage at all, but a SpeedyBox may
        carry its own.  These are lane-only introspection series
        (``lane_*``); the per-flow/table metrics the oracle would have
        produced are kept in parity by the admission path itself.
        """
        metrics = getattr(self.runtime, "metrics", None)
        if metrics is None or not metrics.enabled:
            return
        metrics.counter(
            "lane_batches_total", "whole-batch lane runs"
        ).inc()
        metrics.counter(
            "lane_fast_packets_total", "packets served by whole-run array ops"
        ).inc(self.span_packets)
        metrics.counter(
            "lane_admitted_flows_total", "flows installed by bulk admission"
        ).inc(self.admitted)
        metrics.counter(
            "lane_flushes_total", "deferred-region flushes"
        ).inc(self.flushes)
        metrics.counter(
            "lane_dropped_total", "packets dropped on the lane"
        ).inc(self.dropped)
        metrics.gauge(
            "lane_plan_table_size", "deduplicated stage plans after the last batch"
        ).set(len(self.table))
        metrics.gauge(
            "lane_region_occupancy", "deferred packets awaiting flush at batch end"
        ).set(0)

    def _run_numpy(self, n: int) -> None:
        np = vec.np
        kind_arr = self.kind_arr
        flow_arr = self.flow_arr
        fstat = self.fstat
        fstat_np = self._fstat_np
        collided = self._collided
        i = 0
        while i < n:
            j = min(i + _CHUNK, n)
            pos = i
            while pos < j:
                flows_seg = flow_arr[pos:j]
                kind_seg = kind_arr[pos:j]
                steady = (kind_seg == KIND_DATA) & (fstat_np[flows_seg] == 1)
                # The mask is a snapshot: scalar packets below may flip
                # fstat mid-segment.  Torn-down flows (1 -> 0) only hand
                # a run a flow that fails append validation and replays
                # scalar — correct either way.  Freshly admitted flows
                # (0 -> 1) would mis-route the rest of the segment to
                # the per-packet oracle, so on the first such stale
                # position the mask is recomputed for the remainder
                # (each recompute follows at least one served packet,
                # so the walk always advances).
                scalar_at = np.flatnonzero(~steady)
                scalar_positions = scalar_at.tolist()
                flows_sc = flows_seg[scalar_at].tolist()
                kinds_sc = kind_seg[scalar_at].tolist()
                previous = 0
                stale_at = -1
                for order, position in enumerate(scalar_positions):
                    flow = flows_sc[order]
                    kind = kinds_sc[order]
                    if kind == KIND_DATA and fstat[flow] == 1:
                        stale_at = pos + position
                        break
                    index = pos + position
                    if position > previous:
                        self._append_run(pos + previous, index)
                    if kind != KIND_DATA or flow not in collided:
                        self._flush()
                    self._scalar_packet(index, flow, kind)
                    previous = position + 1
                if stale_at >= 0:
                    if stale_at > pos + previous:
                        self._append_run(pos + previous, stale_at)
                    pos = stale_at
                    continue
                if previous < j - pos:
                    self._append_run(pos + previous, j)
                pos = j
            i = j
        self._flush()

    def _fallback_packet(self, index: int) -> None:
        """Pure-Python walk: runs of length one, no deferral."""
        flow = self.flow_arr[index]
        if self.kind_arr[index] == KIND_DATA and self.fstat[flow] == 1:
            if self._serve_one(index, flow):
                return
        self._scalar_packet(index, flow, self.kind_arr[index])

    def _serve_one(self, index: int, flow: int) -> bool:
        """Serve one believed-steady packet via its closure's bookkeeping."""
        clone = self.runtime._compiled.get(self.batch.five_tuple_of(flow))
        if clone is None or not self._clone_valid(clone):
            return False
        runtime = self.runtime
        runtime.classifier.packets_classified += 1
        runtime.fast_packets += 1
        clone.entry.packets += 1
        clone.rule.hits += 1
        clone.move_to_end(clone.fid)
        if clone.is_drop:
            self.dropped += 1
        self.fplan[flow] = self._steady_pid(clone.steady_report)
        self.plan_ids[index] = self.fplan[flow]
        self.span_packets += 1
        return True

    # -- steady runs: append-time validation, deferred flush -----------------

    def _clone_valid(self, clone) -> bool:
        """The per-packet validity gate of ``CompiledFlow.run``, hoisted.

        The FIN/RST and pre-dropped-descriptor checks are unnecessary
        here: run membership already guarantees ``kind == KIND_DATA``
        (materialized with plain ACK flags) on a fresh descriptor.
        """
        if clone.steady_report is None:
            return False
        fid = clone.fid
        if clone.rules.get(fid) is not clone.rule:
            return False
        if clone.flows.get(fid) is not clone.entry:
            return False
        events = clone.events_by_fid.get(fid)
        if events is not None:
            for event in events:
                if event.active:
                    return False
        return True

    def _drain(self, inval: list) -> None:
        """Evict cached closures for every FID the runtime invalidated."""
        flows_of_fid = self._flows_of_fid
        vclone = self._vclone
        vmask = self._vmask
        for fid in inval:
            flows = flows_of_fid.pop(fid, None)
            if flows is None:
                continue
            if type(flows) is int:
                vclone[flows] = None
                vmask[flows] = 0
            else:
                for flow in flows:
                    vclone[flow] = None
                    vmask[flow] = 0
        inval.clear()

    def _drain_fid(self, fid: int) -> None:
        flows = self._flows_of_fid.pop(fid, None)
        if flows is None:
            return
        if type(flows) is int:
            self._vclone[flows] = None
            self._vmask[flows] = 0
        else:
            vclone = self._vclone
            vmask = self._vmask
            for flow in flows:
                vclone[flow] = None
                vmask[flow] = 0

    def _index_fid(self, fid: int, flow: int) -> None:
        """Record flow slot under its FID (int for the overwhelmingly
        common single-slot case; a list only on an actual collision —
        a million admissions otherwise allocate a million lists)."""
        flows_of_fid = self._flows_of_fid
        prev = flows_of_fid.get(fid)
        if prev is None:
            flows_of_fid[fid] = flow
        elif type(prev) is int:
            flows_of_fid[fid] = [prev, flow]
        else:
            prev.append(flow)

    def _cache_clone(self, flow: int, clone) -> None:
        self._vclone[flow] = clone
        self._vmask[flow] = 1
        self._index_fid(clone.fid, flow)
        self.fplan[flow] = self._steady_pid(clone.steady_report)

    def _append_run(self, lo: int, hi: int) -> None:
        """Validate packets [lo, hi) — all steady-hinted data — and defer.

        Because every state-mutating scalar packet flushes before it
        runs, a run validated here cannot go stale before its flush: the
        flush applies per-flow effects to exactly the closures that were
        live when the packets logically executed.
        """
        inval = self._inval
        if inval:
            self._drain(inval)
        flows_run = self.flow_arr[lo:hi]
        vmask = self._vmask
        if self._vmask_np[flows_run].all():
            self._accept_run(lo, hi, flows_run)
            return
        np = vec.np
        compiled = self.runtime._compiled
        five_tuple_of = self.batch.five_tuple_of
        bad = False
        for flow in np.unique(flows_run).tolist():
            if vmask[flow]:
                continue
            clone = compiled.get(five_tuple_of(flow))
            if clone is None or not self._clone_valid(clone):
                bad = True
                self.fstat[flow] = 0
                continue
            self._cache_clone(flow, clone)
        if not bad:
            self._accept_run(lo, hi, flows_run)
            return
        # Mixed run: some flows validate, some do not.  Flush what
        # precedes it, then replay the run per packet in order (cached
        # flows stay on the closure bookkeeping, the rest go scalar).
        self._flush()
        inval = self._inval
        for offset, flow in enumerate(flows_run.tolist()):
            index = lo + offset
            if inval:
                self._drain(inval)
            if vmask[flow]:
                self._serve_cached(index, flow)
            else:
                self._scalar_packet(index, flow, KIND_DATA)

    def _accept_run(self, lo: int, hi: int, flows_run) -> None:
        count = hi - lo
        runtime = self.runtime
        runtime.classifier.packets_classified += count
        runtime.fast_packets += count
        self.span_packets += count
        self.plan_ids[lo:hi] = self.fplan[flows_run]
        self._deferred.append((lo, hi))

    def _serve_cached(self, index: int, flow: int) -> None:
        """One packet via its already-validated cached closure."""
        clone = self._vclone[flow]
        runtime = self.runtime
        runtime.classifier.packets_classified += 1
        runtime.fast_packets += 1
        clone.entry.packets += 1
        clone.rule.hits += 1
        clone.move_to_end(clone.fid)
        if clone.is_drop:
            self.dropped += 1
        self.plan_ids[index] = self.fplan[flow]
        self.span_packets += 1

    def _flush(self) -> None:
        """Apply the deferred region's per-flow effects in one pass.

        Counts, rule hits and drop totals are commutative; the LRU
        touches — one ``move_to_end`` per flow in last-occurrence order
        over the *whole region* — leave exactly the recency order the
        per-packet sequence would have (scalar packets deferred across
        never touch the LRU).
        """
        deferred = self._deferred
        if not deferred:
            return
        self.flushes += 1
        np = vec.np
        flow_arr = self.flow_arr
        if len(deferred) == 1:
            lo, hi = deferred[0]
            flows_cat = flow_arr[lo:hi]
        else:
            flows_cat = np.concatenate([flow_arr[lo:hi] for lo, hi in deferred])
        deferred.clear()
        # unique over the *reversed* region makes each first_index the
        # distance from the end: descending first_index == ascending
        # last occurrence.
        uniq, first_rev, counts = np.unique(
            flows_cat[::-1], return_index=True, return_counts=True
        )
        vclone = self._vclone
        uniq_list = uniq.tolist()
        dropped = 0
        for flow, count in zip(uniq_list, counts.tolist()):
            clone = vclone[flow]
            clone.entry.packets += count
            clone.rule.hits += count
            if clone.is_drop:
                dropped += count
        self.dropped += dropped
        move = vclone[uniq_list[0]].move_to_end
        for position in np.argsort(first_rev)[::-1].tolist():
            move(vclone[uniq_list[position]].fid)

    # -- scalar packets ------------------------------------------------------

    def _scalar_packet(self, index: int, flow: int, kind: int) -> None:
        """One packet through the oracle (or bulk admission when eligible)."""
        batch = self.batch
        runtime = self.runtime
        bulk_shape = (
            self.bulk_ok
            and kind == KIND_DATA
            and self._proto_of(flow) == PROTO_UDP
        )
        spans = self.spans
        if bulk_shape and self.template is not None:
            fid = self._fid_of_flow(flow)
            entry = runtime.classifier._flows.get(fid)
            if entry is None:
                # The sampling decision must fall in first-packet order,
                # exactly where the per-packet path would take it.  A
                # sampled flow skips bulk admission — its first packet
                # (and every later one, via ``fstat`` staying 0) goes
                # through the oracle so the recorder sees real reports.
                if spans is None or not spans.wants(fid):
                    self._admit(flow, fid, index)
                    return
            elif entry.five_tuple != batch.five_tuple_of(flow):
                # FID collision: the classifier pins the flow to the
                # slow path before touching any table, which is what
                # makes its data packets deferral-safe.
                self._collided.add(flow)

        packet = batch.materialize(index)
        report = runtime.process(packet)
        if spans is not None and spans.skip.get(report.fid) is None:
            spans.record(report, index)
        if report.dropped:
            self.dropped += 1
        if report.steady:
            pid = self._steady_pid(report)
        else:
            pid = self._pid_of(self.platform._stage_plan(report))
        self.plan_ids[index] = pid

        five_tuple = batch.five_tuple_of(flow)
        clone = runtime._compiled.get(five_tuple)
        if (
            clone is not None
            and clone.steady_report is not None
            # A sampled flow stays scalar for life so each packet keeps
            # producing spans; once capped (skip entry present) it earns
            # the fast lane back.
            and (spans is None or spans.skip.get(report.fid) is not None)
        ):
            self.fstat[flow] = 1
        else:
            self.fstat[flow] = 0
        if (
            self.template is None
            and bulk_shape
            and clone is not None
            and report.path is PathTaken.ORIGINAL
            and not report.closing
        ):
            self._try_capture_template(flow, five_tuple, report, clone, pid)
        # The invalidation feed cannot see an NF *activating* an event
        # on a cached FID mid-traversal (registration bypasses the
        # compiled table).  Probe for it: active events on the FID kill
        # its cached closures, after flushing what logically preceded.
        if self._flows_of_fid and (
            report.events_fired
            or runtime.event_table.active_event_count(report.fid)
        ):
            self._flush()
            self._drain_fid(report.fid)

    def _fid_of_flow(self, flow: int) -> int:
        fids = self._fids
        if fids is None:
            batch = self.batch
            if vec.HAVE_NUMPY:
                fids = fid_column(
                    batch.flow_src_ip,
                    batch.flow_dst_ip,
                    batch.flow_src_port,
                    batch.flow_dst_port,
                    batch.flow_proto,
                )
                self._fids = fids = fids.tolist()
            else:
                # No column: fid_of is lru-cached on the interned tuple.
                return fid_of(batch.five_tuple_of(flow))
        # Plain int: the fid flows into table keys, audit payloads and
        # FlowEntry fields that must stay numpy-free.
        return fids[flow]

    # -- bulk admission ------------------------------------------------------

    def _try_capture_template(self, flow, five_tuple, report, clone, pid) -> None:
        """Capture the one-per-run bulk template from a scalar first packet.

        Every guard re-checks what bulk admission will assume: the flow
        really is brand new (one packet, owns its FID), its rule is the
        live compiled one, the recording was header-actions-only.  The
        template stays valid even after the template flow itself is
        evicted — the GlobalRule object and its shared artifacts are
        immutable once built (``install_prebuilt``'s contract).
        """
        runtime = self.runtime
        if clone.steady_report is None:
            return
        fid = clone.fid
        entry = runtime.classifier._flows.get(fid)
        if entry is not clone.entry or entry.packets != 1:
            return
        if entry.five_tuple != five_tuple:
            return
        if runtime.global_mat.peek(fid) is not clone.rule:
            return
        if report.events_fired:
            return
        ran = len(report.nf_meters)
        mat_plumbing = []
        for position, nf in enumerate(runtime.nfs):
            local_mat = runtime.local_mats[nf.name]
            if position < ran:
                local_rule = local_mat.rule_for(fid)
                if local_rule is None or local_rule.sf_batch or local_rule.event_count:
                    return
                actions = tuple(local_rule.header_actions)
                mat_plumbing.append(
                    (local_mat, local_mat._rules, nf.name, actions, len(actions))
                )
            else:
                mat_plumbing.append((local_mat, local_mat._rules, nf.name, None, 0))
        steady_pid = self._steady_pid(clone.steady_report)
        steady_plan = self.table[steady_pid]
        self.template = BulkTemplate(
            rule=clone.rule,
            compiled=clone,
            ran=ran,
            mat_plumbing=mat_plumbing,
            dropped=report.dropped,
            original_pid=pid,
            steady_pid=steady_pid,
            steady_plan=steady_plan,
            waves=clone.rule.schedule.wave_count,
            drop_action=clone.rule.consolidated.drop,
        )
        # One shared, immutable plan-cache tuple for every admitted
        # clone's steady report (identical timing by meter identity).
        self._admit_plan_cache = (self.platform, steady_plan, steady_pid, self)

    def _admit(self, flow: int, fid: int, index: int) -> None:
        """Install one new flow from the template, no packet materialized.

        Operation-for-operation the memoized slow path: same classifier
        insert (after the same capacity eviction), same Local MAT record
        state, same Global MAT install, same compiled-closure clone, same
        audit events in the same order.  Meter charges are value-typical
        by the oblivious contract and live only in the (shared) template
        report, which is exactly what feeds the stage plan.
        """
        runtime = self.runtime
        template = self.template
        classifier = runtime.classifier
        classifier.packets_classified += 1
        flows = classifier._flows
        null_metrics = self._null_metrics
        gm = runtime.global_mat
        gm_rules = gm._rules
        if classifier.capacity is not None and len(flows) >= classifier.capacity:
            if self._plain_evict:
                # Inlined ``_evict_oldest`` + ``_on_classifier_evicted``:
                # the teardown is five dict pops, and the method frames
                # dominated eviction-heavy admission.  Same pops, same
                # invalidation-feed append, same audit events in order.
                vfid, victim = flows.popitem(last=False)
                classifier.evictions += 1
                if not null_metrics:
                    classifier._m_flows.set(len(flows))
                audit = runtime.audit
                key = runtime._compiled_fids.pop(vfid, None)
                if key is not None:
                    runtime._compiled.pop(key, None)
                    self._inval.append(vfid)
                    audit.emit(
                        "fastpath_invalidate", fid=vfid, reason="classifier_evict"
                    )
                if gm_rules.pop(vfid, None) is not None and not null_metrics:
                    gm._m_occupancy.set(len(gm_rules))
                for rules in self._local_rule_dicts:
                    rules.pop(vfid, None)
                self._events_by_fid.pop(vfid, None)
                audit.emit("classifier_evict", fid=vfid, packets=victim.packets)
            else:
                classifier._evict_oldest()
        ft_lists = self._ft_lists
        if ft_lists is None:
            batch = self.batch
            ft_lists = self._ft_lists = tuple(
                col.tolist() if hasattr(col, "tolist") else list(col)
                for col in (
                    batch.flow_src_ip,
                    batch.flow_dst_ip,
                    batch.flow_src_port,
                    batch.flow_dst_port,
                    batch.flow_proto,
                )
            )
        five_tuple = FiveTuple(
            ft_lists[0][flow],
            ft_lists[1][flow],
            ft_lists[2][flow],
            ft_lists[3][flow],
            ft_lists[4][flow],
        )
        entry = FlowEntry.__new__(FlowEntry)
        entry.fid = fid
        entry.five_tuple = five_tuple
        entry.established = True
        entry.closed = False
        entry.packets = 1
        flows[fid] = entry
        runtime.slow_packets += 1
        # Inlined ``begin_recording`` + recorded-action replay: same
        # event-table clear, same fresh LocalRule, same record counters —
        # minus three method frames per admission.  The event-table clear
        # is skipped entirely while no flow anywhere has events (the
        # common case for setup-oblivious chains): clearing an empty
        # table is a no-op by definition.  Rules are built field by field
        # (``__new__``) — at hundreds of thousands of admissions the
        # constructor frames alone are measurable.
        clear_nf_flow = self._clear_nf_flow if self._events_by_fid else None
        for local_mat, rules, nf_name, actions, n_actions in template.mat_plumbing:
            if clear_nf_flow is not None:
                clear_nf_flow(fid, nf_name)
            local_rule = LocalRule.__new__(LocalRule)
            local_rule.fid = fid
            local_rule.header_actions = [] if actions is None else list(actions)
            sf_batch = StateFunctionBatch.__new__(StateFunctionBatch)
            sf_batch.nf_name = nf_name
            sf_batch._functions = []
            local_rule.sf_batch = sf_batch
            local_rule.event_count = 0
            local_rule.hits = 0
            if actions is not None:
                local_mat.records_ha += n_actions
            rules[fid] = local_rule
        if fid in gm_rules:
            # A live rule under this FID (never on the bulk path in
            # practice — admission implies the classifier forgot the
            # flow, and that teardown removed the rule): take the full
            # reinstall with its version bump and rebuild audit.
            rule = gm.install_prebuilt(fid, template.rule)
        else:
            # Inlined ``install_prebuilt``, fresh-insert arm: identical
            # rule, counters and audit; ``move_to_end`` elided because a
            # fresh key is already youngest.
            t_rule = template.rule
            rule = GlobalRule.__new__(GlobalRule)
            rule.fid = fid
            rule.consolidated = t_rule.consolidated
            rule.schedule = t_rule.schedule
            rule.nf_names = t_rule.nf_names
            rule.raw_actions = t_rule.raw_actions
            rule.pre_drop = t_rule.pre_drop
            rule.dropper = t_rule.dropper
            rule.version = 1
            rule.hits = 0
            gm.consolidations += 1
            runtime.audit.emit(
                "global_mat_insert",
                fid=fid,
                version=1,
                waves=template.waves,
                drop=template.drop_action,
            )
            gm_rules[fid] = rule
            if gm.capacity is not None and len(gm_rules) > gm.capacity:
                gm._enforce_capacity(keep_fid=fid)
            if not null_metrics:
                gm._m_consolidations.inc()
                gm._m_occupancy.set(len(gm_rules))
        compiled = template.compiled.clone_for(entry, rule)
        runtime._compiled[five_tuple] = compiled
        runtime._compiled_fids[fid] = five_tuple
        runtime.audit.emit(
            "fastpath_compile",
            fid=fid,
            version=rule.version,
            waves=template.waves,
            drop=template.drop_action,
        )
        # Pre-seed the clone's steady plan: its report shares the
        # template's fixed meter by identity, so the plan (and timing)
        # are the template's to the bit — no per-flow stage_plan walk.
        compiled.steady_report.plan_cache = self._admit_plan_cache
        self.fstat[flow] = 1
        self.fplan[flow] = template.steady_pid
        self._vclone[flow] = compiled
        self._vmask[flow] = 1
        flows_of_fid = self._flows_of_fid
        prev = flows_of_fid.get(fid)
        if prev is None:
            flows_of_fid[fid] = flow
        elif type(prev) is int:
            flows_of_fid[fid] = [prev, flow]
        else:
            prev.append(flow)
        if template.dropped:
            self.dropped += 1
        self.plan_ids[index] = template.original_pid
        self.admitted += 1

    # -- plan table ----------------------------------------------------------

    def _pid_of(self, plan) -> int:
        key = tuple(plan)
        pid = self._pid_by_value.get(key)
        if pid is None:
            pid = len(self.table)
            self.table.append(plan)
            self._pid_by_value[key] = pid
        return pid

    def _steady_pid(self, report) -> int:
        """Plan id of a steady singleton report, memoized on the report.

        The ``lane`` slot guards cross-run staleness: a pid minted by a
        previous lane run indexes *that* run's table, so only the plan
        object survives and the pid is re-derived for this table.
        """
        cached = report.plan_cache
        if cached is not None and cached[0] is self.platform:
            if cached[3] is self:
                return cached[2]
            plan = cached[1]
        else:
            plan = self.platform._stage_plan(report)
        pid = self._pid_of(plan)
        report.plan_cache = (self.platform, plan, pid, self)
        return pid
