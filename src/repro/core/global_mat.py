"""The Global MAT (§V).

For every flow the Global MAT holds one :class:`GlobalRule`: the
consolidated header action plus the parallel schedule of state-function
batches.  Rules are built from the chain-ordered Local MAT records when
the initial packet finishes the original path, and rebuilt whenever the
Event Table fires an update for the flow.

Early drop and state functions: when the consolidated action is DROP
(some NF at position *k* drops the flow), the rule still executes the
state-function batches of NFs at positions ≤ *k* — those NFs observed the
packet on the original path (e.g. a Monitor in front of the dropping
Firewall keeps counting) — and discards the batches of NFs after *k*,
which never saw the packet.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import Drop, HeaderAction
from repro.core.consolidation import ConsolidatedAction, consolidate_header_actions
from repro.core.local_mat import LocalRule
from repro.core.parallel import ParallelSchedule, build_schedule
from repro.core.state_function import StateFunctionBatch
from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY


class GlobalRule:
    """One flow's consolidated fast-path rule."""

    __slots__ = (
        "fid",
        "consolidated",
        "schedule",
        "nf_names",
        "raw_actions",
        "pre_drop",
        "dropper",
        "version",
        "hits",
    )

    def __init__(
        self,
        fid: int,
        consolidated: ConsolidatedAction,
        schedule: ParallelSchedule,
        nf_names: Sequence[str],
        raw_actions: Sequence[HeaderAction] = (),
        pre_drop: Optional[ConsolidatedAction] = None,
        dropper: Optional[str] = None,
    ):
        self.fid = fid
        self.consolidated = consolidated
        self.schedule = schedule
        self.nf_names: Tuple[str, ...] = tuple(nf_names)
        #: chain-ordered un-consolidated actions (consolidation ablation)
        self.raw_actions: Tuple[HeaderAction, ...] = tuple(raw_actions)
        #: for drop rules: the consolidation of the actions *upstream* of
        #: the drop — applied before state functions run, so they observe
        #: the packet exactly as the original path showed it to their NFs
        self.pre_drop = pre_drop
        #: name of the NF whose DROP ended the chain (drop rules only)
        self.dropper = dropper
        self.version = 1
        self.hits = 0

    def __repr__(self) -> str:
        return (
            f"<GlobalRule fid={self.fid} v{self.version} {self.consolidated!r} "
            f"waves={self.schedule.wave_count}>"
        )


class GlobalMAT:
    """FID → consolidated rule, plus the consolidation procedure.

    ``capacity`` bounds the rule table (the 20-bit FID space is finite
    and rules pin memory): when full, the least-recently-used rule is
    evicted and ``on_evict(fid)`` — if provided — lets the framework tear
    down the flow's Local MAT records and events.  Evicted flows simply
    fall back to the original path and re-consolidate on their next
    packet, so eviction is always safe.
    """

    def __init__(
        self,
        enable_parallelism: bool = True,
        capacity: Optional[int] = None,
        on_evict: Optional[Callable[[int], None]] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        audit: AuditLog = NULL_AUDIT,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.enable_parallelism = enable_parallelism
        self.capacity = capacity
        self.on_evict = on_evict
        self.audit = audit
        self._rules: "OrderedDict[int, GlobalRule]" = OrderedDict()
        self.consolidations = 0
        self.reconsolidations = 0
        self.evictions = 0
        lookups = metrics.counter("global_mat_lookups_total", "fast-path rule lookups")
        self._m_hits = lookups.labels(result="hit")
        self._m_misses = lookups.labels(result="miss")
        self._m_consolidations = metrics.counter(
            "global_mat_consolidations_total", "rules built (incl. rebuilds)"
        )
        self._m_reconsolidations = metrics.counter(
            "global_mat_reconsolidations_total", "event-driven rule rebuilds"
        )
        self._m_evictions = metrics.counter(
            "global_mat_evictions_total", "LRU evictions at capacity"
        )
        self._m_occupancy = metrics.gauge(
            "global_mat_occupancy", "rules currently installed"
        )

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, fid: int) -> bool:
        return fid in self._rules

    def lookup(self, fid: int) -> Optional[GlobalRule]:
        rule = self._rules.get(fid)
        if rule is not None:
            rule.hits += 1
            self._rules.move_to_end(fid)  # most recently used
            self._m_hits.inc()
        else:
            self._m_misses.inc()
        return rule

    def peek(self, fid: int) -> Optional[GlobalRule]:
        return self._rules.get(fid)

    def build_rule(self, fid: int, local_rules: Sequence[Tuple[str, LocalRule]]) -> GlobalRule:
        """Consolidate the chain-ordered per-NF records into one rule.

        ``local_rules`` pairs each NF name with its Local MAT record for
        the flow, in chain order; NFs with no record contribute nothing.
        """
        actions: List[HeaderAction] = []
        pre_drop_actions: List[HeaderAction] = []
        drop_position: Optional[int] = None
        dropper: Optional[str] = None
        for position, (name, rule) in enumerate(local_rules):
            if rule is None:
                continue
            actions.extend(rule.header_actions)
            if drop_position is None:
                for action in rule.header_actions:
                    if isinstance(action, Drop):
                        drop_position = position
                        dropper = name
                        break
                    pre_drop_actions.append(action)

        consolidated = consolidate_header_actions(actions)
        pre_drop: Optional[ConsolidatedAction] = None
        if drop_position is not None:
            pre_drop = consolidate_header_actions(pre_drop_actions)

        batches: List[StateFunctionBatch] = []
        for position, (__, rule) in enumerate(local_rules):
            if rule is None or not rule.sf_batch:
                continue
            if drop_position is not None and position > drop_position:
                continue  # NFs after the dropper never saw the packet
            batches.append(rule.sf_batch)

        if self.enable_parallelism:
            schedule = build_schedule(batches)
        else:
            schedule = ParallelSchedule([[batch] for batch in batches])

        nf_names = [name for name, __ in local_rules]
        new_rule = GlobalRule(
            fid,
            consolidated,
            schedule,
            nf_names,
            raw_actions=actions,
            pre_drop=pre_drop,
            dropper=dropper,
        )
        existing = self._rules.get(fid)
        if existing is not None:
            new_rule.version = existing.version + 1
            new_rule.hits = existing.hits
            self.reconsolidations += 1
            self._m_reconsolidations.inc()
        self.consolidations += 1
        self._m_consolidations.inc()
        self.audit.emit(
            "global_mat_rebuild" if existing is not None else "global_mat_insert",
            fid=fid,
            version=new_rule.version,
            waves=schedule.wave_count,
            drop=new_rule.consolidated.drop,
        )
        self._rules[fid] = new_rule
        self._rules.move_to_end(fid)
        self._enforce_capacity(keep_fid=fid)
        self._m_occupancy.set(len(self._rules))
        return new_rule

    def install_prebuilt(self, fid: int, template: GlobalRule) -> GlobalRule:
        """Install a rule for ``fid`` sharing a template's consolidation.

        The setup memo (batch engine) calls this when a new flow's
        recorded behaviour is action-for-action identical to a flow that
        already consolidated: the expensive artifacts — the consolidated
        action, the parallel schedule, the pre-drop consolidation — are
        *shared by identity* with the template (all immutable once built;
        event-driven rebuilds replace the rule rather than mutate these).
        Counter, audit and LRU side effects mirror :meth:`build_rule`
        exactly, so the resulting table state is indistinguishable from a
        from-scratch consolidation.
        """
        new_rule = GlobalRule(
            fid,
            template.consolidated,
            template.schedule,
            template.nf_names,
            raw_actions=template.raw_actions,
            pre_drop=template.pre_drop,
            dropper=template.dropper,
        )
        existing = self._rules.get(fid)
        if existing is not None:
            new_rule.version = existing.version + 1
            new_rule.hits = existing.hits
            self.reconsolidations += 1
            self._m_reconsolidations.inc()
        self.consolidations += 1
        self._m_consolidations.inc()
        self.audit.emit(
            "global_mat_rebuild" if existing is not None else "global_mat_insert",
            fid=fid,
            version=new_rule.version,
            waves=template.schedule.wave_count,
            drop=new_rule.consolidated.drop,
        )
        self._rules[fid] = new_rule
        self._rules.move_to_end(fid)
        self._enforce_capacity(keep_fid=fid)
        self._m_occupancy.set(len(self._rules))
        return new_rule

    def _enforce_capacity(self, keep_fid: int) -> None:
        if self.capacity is None:
            return
        while len(self._rules) > self.capacity:
            victim_fid = next(iter(self._rules))
            if victim_fid == keep_fid:
                # Never evict the rule just installed.
                self._rules.move_to_end(victim_fid)
                victim_fid = next(iter(self._rules))
            del self._rules[victim_fid]
            self.evictions += 1
            self._m_evictions.inc()
            self.audit.emit("global_mat_evict", fid=victim_fid)
            if self.on_evict is not None:
                self.on_evict(victim_fid)

    def delete_flow(self, fid: int) -> bool:
        """FIN/RST cleanup (§VI-B): drop the rule, free the memory."""
        removed = self._rules.pop(fid, None) is not None
        if removed:
            self._m_occupancy.set(len(self._rules))
        return removed

    # -- migration support (repro.scale) -------------------------------------

    def export_rule(self, fid: int) -> Optional[GlobalRule]:
        """Detach and return the flow's consolidated rule for migration.

        Deliberately NOT an eviction: ``on_evict`` is not invoked, because
        the flow's Local MAT records and events migrate alongside the rule
        rather than being torn down.
        """
        rule = self._rules.pop(fid, None)
        if rule is not None:
            self._m_occupancy.set(len(self._rules))
        return rule

    def import_rule(self, rule: GlobalRule) -> None:
        """Adopt a migrated rule (schedule batches already rebound)."""
        self._rules[rule.fid] = rule
        self._rules.move_to_end(rule.fid)
        self._enforce_capacity(keep_fid=rule.fid)
        self._m_occupancy.set(len(self._rules))

    def flows(self) -> Tuple[int, ...]:
        return tuple(self._rules)

    def __repr__(self) -> str:
        return f"<GlobalMAT {len(self._rules)} rules, {self.consolidations} consolidations>"
