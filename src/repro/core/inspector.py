"""Human-readable dumps of SpeedyBox's runtime state.

The operational equivalent of ``ovs-dpctl dump-flows``: render the Global
MAT's consolidated rules, each flow's action summary, state-function
schedule and event status — the view an operator (or a debugging test)
wants when asking "what will the fast path do to this flow?".
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.consolidation import ConsolidatedAction
from repro.core.framework import SpeedyBox
from repro.core.global_mat import GlobalRule
from repro.net.addresses import ip_to_str
from repro.net.flow import FiveTuple


def describe_action(action: ConsolidatedAction) -> str:
    """One-line rendering of a consolidated header action."""
    if action.drop:
        return "drop"
    parts: List[str] = []
    if action.leading_decaps:
        parts.append(f"decap x{len(action.leading_decaps)}")
    for field, op in sorted(action.field_ops.items(), key=lambda kv: kv[0].value):
        if op.set_value is not None:
            if field.value in ("src_ip", "dst_ip"):
                rendered = ip_to_str(op.set_value + op.delta)
            else:
                rendered = str(op.apply(0))
            parts.append(f"set {field.value}={rendered}")
        else:
            parts.append(f"adjust {field.value}{op.delta:+d}")
    for encap in action.net_encaps:
        parts.append(f"encap {type(encap.template).__name__}")
    return ", ".join(parts) if parts else "forward"


def describe_schedule(rule: GlobalRule) -> str:
    """The SF schedule as wave groups: [a+b] -> [c]."""
    waves = []
    for wave in rule.schedule.waves:
        members = "+".join(f"{batch.nf_name}.{batch.functions[0].name}" if len(batch) == 1
                           else f"{batch.nf_name}(x{len(batch)})" for batch in wave)
        waves.append(f"[{members}]")
    return " -> ".join(waves) if waves else "(no state functions)"


def describe_rule(speedybox: SpeedyBox, fid: int, verbose: bool = False) -> str:
    """Multi-line description of one flow's fast-path rule.

    ``verbose=True`` appends the step-by-step consolidation narration
    (how each recorded action merged into the final rule).
    """
    rule = speedybox.global_mat.peek(fid)
    if rule is None:
        return f"fid={fid}: no consolidated rule (slow path)"
    lines = [f"fid={fid} v{rule.version} hits={rule.hits}"]
    entry = speedybox.classifier.flow(fid)
    if entry is not None:
        lines.append(f"  flow    : {entry.five_tuple} ({entry.packets} pkts)")
    lines.append(f"  action  : {describe_action(rule.consolidated)}")
    lines.append(f"  schedule: {describe_schedule(rule)}")
    events = speedybox.event_table.events_for(fid)
    if events:
        for event in events:
            state = "armed" if event.active else f"fired x{event.trigger_count}"
            lines.append(f"  event   : {event.nf_name}/{event.condition.__name__} ({state})")
    if verbose and rule.raw_actions:
        from repro.core.consolidation import explain_consolidation

        lines.append("  consolidation trace:")
        for trace_line in explain_consolidation(rule.raw_actions):
            lines.append(f"    {trace_line}")
    return "\n".join(lines)


def dump_global_mat(speedybox: SpeedyBox, limit: Optional[int] = None) -> str:
    """Dump every consolidated rule (most recently used last)."""
    fids = list(speedybox.global_mat.flows())
    if limit is not None:
        fids = fids[-limit:]
    if not fids:
        return "(global MAT empty)"
    blocks = [describe_rule(speedybox, fid) for fid in fids]
    stats = speedybox.stats()
    footer = (
        f"-- {len(fids)} rules shown / {stats['active_rules']:.0f} active; "
        f"fast-path rate {100 * stats['fast_path_rate']:.1f}%; "
        f"{stats['events_triggered']:.0f} events fired"
    )
    return "\n".join(blocks + [footer])


def lookup_flow_rule(speedybox: SpeedyBox, five_tuple: FiveTuple) -> str:
    """Describe the rule a given five-tuple would hit."""
    from repro.core.classifier import fid_of

    return describe_rule(speedybox, fid_of(five_tuple))
