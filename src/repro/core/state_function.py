"""State functions and state-function batches (§IV-A2, §V-C).

A state function is the handler of an NF callback that updates internal
state and/or inspects the payload.  Each function declares how it touches
the payload — WRITE, READ or IGNORE — which drives the parallelism
analysis of Table I.  All state functions an NF records for one flow form
a *batch*; a batch executes strictly in recording order (queue semantics,
§IV-B), and the payload class of the batch is the highest-priority class
among its members (WRITE > READ > IGNORE, §V-C2).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.net.packet import Packet

StateFunctionHandler = Callable[..., Any]


class PayloadClass(enum.IntEnum):
    """How a state function interacts with the packet payload.

    Ordered by the priority rule of §V-C2: WRITE > READ > IGNORE.
    """

    IGNORE = 0
    READ = 1
    WRITE = 2


class StateFunction:
    """A recorded NF callback: handler + payload class + bound arguments.

    Invocation passes the packet first, then the recorded ``args`` — the
    function-handler convention of Fig. 2's ``localmat_add_SF``.
    """

    __slots__ = ("handler", "payload_class", "args", "name", "nf_name", "invocations")

    def __init__(
        self,
        handler: StateFunctionHandler,
        payload_class: PayloadClass,
        args: Tuple = (),
        name: str = "",
        nf_name: str = "",
    ):
        if not callable(handler):
            raise TypeError(f"state function handler must be callable, got {handler!r}")
        self.handler = handler
        self.payload_class = PayloadClass(payload_class)
        self.args = tuple(args)
        self.name = name or getattr(handler, "__name__", "state_function")
        self.nf_name = nf_name
        self.invocations = 0

    def invoke(self, packet: Packet) -> Any:
        """Execute the recorded handler on ``packet``."""
        self.invocations += 1
        return self.handler(packet, *self.args)

    def __repr__(self) -> str:
        owner = f"{self.nf_name}." if self.nf_name else ""
        return f"<StateFunction {owner}{self.name} [{self.payload_class.name}]>"


class StateFunctionBatch:
    """All state functions one NF recorded for one flow, in order.

    The batch is the unit of the parallelism analysis (§V-C2): functions
    *within* a batch always run sequentially; *across* batches, Table I
    decides.
    """

    __slots__ = ("nf_name", "_functions")

    def __init__(self, nf_name: str = "", functions: Optional[Sequence[StateFunction]] = None):
        self.nf_name = nf_name
        self._functions: List[StateFunction] = list(functions or [])

    def add(self, function: StateFunction) -> None:
        self._functions.append(function)

    @property
    def functions(self) -> Tuple[StateFunction, ...]:
        return tuple(self._functions)

    def __len__(self) -> int:
        return len(self._functions)

    def __bool__(self) -> bool:
        return bool(self._functions)

    def __iter__(self):
        return iter(self._functions)

    @property
    def payload_class(self) -> PayloadClass:
        """Highest-priority payload class in the batch (WRITE > READ > IGNORE)."""
        if not self._functions:
            return PayloadClass.IGNORE
        return PayloadClass(max(fn.payload_class for fn in self._functions))

    def execute(self, packet: Packet) -> List[Any]:
        """Run every function in recording order; returns their results."""
        return [function.invoke(packet) for function in self._functions]

    def clone_with(self, functions: Sequence[StateFunction]) -> "StateFunctionBatch":
        return StateFunctionBatch(self.nf_name, functions)

    def __repr__(self) -> str:
        names = ", ".join(fn.name for fn in self._functions)
        return f"<SFBatch {self.nf_name}: [{names}] {self.payload_class.name}>"
