"""State-function batch parallelism (§V-C2, Table I).

Whether two batches may run in parallel is decided purely by how they
touch the shared packet payload (header dependencies are already removed
by the Global MAT's header-action consolidation):

- both only READ (or IGNORE): parallelizable;
- a batch that WRITEs conflicts with any other batch that READs or
  WRITEs — it can only run in parallel with IGNORE batches.

(Table I as printed in the paper is read column = batch1 / row = batch2;
the accompanying text — "if batch1 writes the payload, they cannot be
parallelized unless batch2 ignores the payload" — pins the rule above.)

The *schedule* groups the chain-ordered batches into consecutive parallel
waves: a batch joins the current wave iff it is pairwise-parallelizable
with every batch already in the wave, otherwise a new wave starts.  Waves
run sequentially; batches inside a wave run concurrently.  NF order
inside a wave is irrelevant precisely because no payload hazard exists.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.core.state_function import PayloadClass, StateFunctionBatch
from repro.net.packet import Packet


def batches_parallelizable(first: StateFunctionBatch, second: StateFunctionBatch) -> bool:
    """Table I: can ``first`` and ``second`` execute concurrently?"""
    return payload_classes_parallelizable(first.payload_class, second.payload_class)


def payload_classes_parallelizable(first: PayloadClass, second: PayloadClass) -> bool:
    """The payload-hazard rule on raw payload classes."""
    if first == PayloadClass.WRITE:
        return second == PayloadClass.IGNORE
    if second == PayloadClass.WRITE:
        return first == PayloadClass.IGNORE
    return True


class ParallelSchedule:
    """Chain-ordered batches grouped into parallel waves."""

    __slots__ = ("waves",)

    def __init__(self, waves: Sequence[Sequence[StateFunctionBatch]]):
        self.waves: Tuple[Tuple[StateFunctionBatch, ...], ...] = tuple(
            tuple(wave) for wave in waves
        )

    @property
    def batch_count(self) -> int:
        return sum(len(wave) for wave in self.waves)

    @property
    def wave_count(self) -> int:
        return len(self.waves)

    @property
    def max_wave_width(self) -> int:
        """Worker cores needed to realise the full parallelism."""
        return max((len(wave) for wave in self.waves), default=0)

    def all_batches(self) -> List[StateFunctionBatch]:
        return [batch for wave in self.waves for batch in wave]

    def execute(self, packet: Packet) -> List[Any]:
        """Run the schedule *functionally* (single-threaded, wave order).

        Functional execution order within a wave follows chain order; by
        construction no payload hazard exists inside a wave, so this is
        equivalent to any concurrent interleaving.  Timing (the latency
        benefit of width) is modelled by the platform layer, which charges
        max-over-wave instead of sum.
        """
        results: List[Any] = []
        for wave in self.waves:
            for batch in wave:
                results.extend(batch.execute(packet))
        return results

    def __repr__(self) -> str:
        shape = " | ".join("+".join(b.nf_name or "?" for b in wave) for wave in self.waves)
        return f"<ParallelSchedule [{shape}]>"


def build_schedule(batches: Sequence[StateFunctionBatch]) -> ParallelSchedule:
    """Greedy wave construction over the chain-ordered non-empty batches."""
    waves: List[List[StateFunctionBatch]] = []
    current: List[StateFunctionBatch] = []
    for batch in batches:
        if not batch:
            continue
        if current and not all(batches_parallelizable(batch, member) for member in current):
            waves.append(current)
            current = [batch]
        else:
            current.append(batch)
    if current:
        waves.append(current)
    return ParallelSchedule(waves)
