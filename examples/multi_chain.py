#!/usr/bin/env python3
"""Multi-chain deployment: steering traffic classes to their own chains.

An SFC-style deployment with three chains behind one director:

- web traffic (80/443/8080)  → NAT → Maglev → Monitor → Firewall
- dns traffic (53)           → Monitor (accounting only)
- everything else            → Snort → Monitor (inspect the unknown)

Each chain consolidates independently — per-chain Local/Global MATs and
Event Tables — and a mid-run steering change shows live flows staying
pinned to their original chain while new flows follow the new policy.

Run:  python examples/multi_chain.py
"""

from repro.core import ServiceDirector, SteeringRule, dump_global_mat
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor, SnortIDS
from repro.nf.ipfilter import AclRule
from repro.stats import format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator

RULES_TEXT = 'alert tcp any any -> any any (msg:"unknown-svc exploit"; content:"exploit"; sid:1;)'


def build_director():
    chains = {
        "web": [
            MazuNAT("web-nat", external_ip="203.0.113.10"),
            MaglevLoadBalancer("web-lb", table_size=131),
            Monitor("web-mon"),
            IPFilter("web-fw"),
        ],
        "dns": [Monitor("dns-mon")],
        "inspect": [SnortIDS("other-ids", RULES_TEXT), Monitor("other-mon")],
    }
    steering = [
        SteeringRule(AclRule.make(dst_ports=(80, 80)), "web"),
        SteeringRule(AclRule.make(dst_ports=(443, 443)), "web"),
        SteeringRule(AclRule.make(dst_ports=(8080, 8080)), "web"),
        SteeringRule(AclRule.make(dst_ports=(53, 53)), "dns"),
    ]
    return ServiceDirector(chains, steering, default_chain="inspect")


def main():
    config = DatacenterTraceConfig(
        flows=50, seed=23, service_ports=(80, 443, 8080, 53, 11211), with_fin=False
    )
    specs = DatacenterTraceGenerator(config).generate_flows()
    packets = TrafficGenerator(specs, interleave="round_robin").packets()

    director = build_director()
    for index, packet in enumerate(packets):
        if index == len(packets) // 2:
            # Mid-run policy change: port 8080 moves to the inspect chain.
            director.add_rule(
                SteeringRule(AclRule.make(dst_ports=(8080, 8080)), "inspect"), position=0
            )
            print("*** steering change: 8080 now routes to 'inspect' (live flows stay pinned)\n")
        director.process(packet)

    rows = []
    for chain, stats in director.stats().items():
        rows.append(
            [
                chain,
                int(stats["packets"]),
                f"{100 * stats.get('fast_path_rate', 0):.1f}%",
                int(stats.get("active_rules", 0)),
                int(stats.get("events_registered", 0)),
            ]
        )
    print(format_table(
        ["chain", "packets", "fast-path rate", "rules", "events"],
        rows,
        title="per-chain consolidation state",
    ))

    print("\nweb chain's Global MAT (2 most recent rules):")
    print(dump_global_mat(director.runtime("web"), limit=2))


if __name__ == "__main__":
    main()
