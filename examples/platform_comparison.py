#!/usr/bin/env python3
"""BESS vs OpenNetVM across chain lengths (a live Figure 8).

Sweeps firewall chains from 1 to 9 NFs on both platform models, with and
without SpeedyBox, printing the latency and throughput series the
paper's Fig. 8 plots.  Shows the two platforms' contrasting execution
models: BESS's run-to-completion rate collapses as chains grow while
OpenNetVM pipelines — and SpeedyBox's fast path makes length irrelevant
on both.

Run:  python examples/platform_comparison.py
"""

from repro import BessPlatform, OpenNetVMPlatform, ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def build_chain(n):
    return [IPFilter(f"fw{i}") for i in range(n)]


def measure(platform_cls, runtime, packets, **kwargs):
    platform = platform_cls(runtime, **kwargs)
    load = platform.run_load(clone_packets(packets))
    platform.reset()
    outcomes = platform.process_all(clone_packets(packets[:4]))
    return outcomes[-1].latency_ns / 1000.0, load.throughput_mpps


def main():
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", 1000, 80, packets=80, payload=b"x" * 26)
    packets = TrafficGenerator([spec]).packets()

    rows = []
    for n in range(1, 10):
        row = [n]
        for platform_cls, max_len in ((BessPlatform, 9), (OpenNetVMPlatform, 5)):
            for runtime_cls in (ServiceChain, SpeedyBox):
                if n > max_len:
                    row.extend(["-", "-"])
                    continue
                latency, rate = measure(platform_cls, runtime_cls(build_chain(n)), packets)
                row.extend([f"{latency:.2f}", f"{rate:.2f}"])
        rows.append(row)

    print(format_table(
        [
            "len",
            "BESS us", "BESS Mpps",
            "BESS+SBox us", "BESS+SBox Mpps",
            "ONVM us", "ONVM Mpps",
            "ONVM+SBox us", "ONVM+SBox Mpps",
        ],
        rows,
        title="Chain length sweep (ONVM capped at 5 NFs: the paper's 14-core testbed)",
    ))
    print("\nNote how the '+SBox' latency columns stay flat while the")
    print("original chains grow linearly — cross-NF consolidation makes")
    print("chain length irrelevant for subsequent packets (Fig. 8).")


if __name__ == "__main__":
    main()
