#!/usr/bin/env python3
"""Rate limiting on the fast path: the Event Table at full stretch.

A token-bucket policer's verdict flips whenever its bucket drains or
refills — events are the steady state, not the exception.  This demo
offers one flow in three phases (polite, flood, recovery) and shows the
consolidated rule flipping FORWARD -> DROP -> FORWARD at runtime, with
the drop pattern identical to the unconsolidated chain.

Run:  python examples/rate_limiting.py
"""

from repro import BessPlatform, ServiceChain, SpeedyBox
from repro.core import describe_rule
from repro.net import FiveTuple, Packet
from repro.nf import Monitor, TokenBucketPolicer
from repro.stats import format_table

RATE_PPS = 100_000.0  # one token per 10 us
BURST = 5


def build_chain():
    return [TokenBucketPolicer("policer", rate_pps=RATE_PPS, burst=BURST), Monitor("monitor")]


def phased_traffic():
    """Polite (20 us gaps) -> flood (2 us gaps) -> recovery (50 us gaps)."""
    phases = [(15, 20_000.0), (25, 2_000.0), (10, 50_000.0)]
    packets = []
    timestamp = 0.0
    for count, gap_ns in phases:
        for __ in range(count):
            timestamp += gap_ns
            packets.append(
                Packet.from_five_tuple(
                    FiveTuple.make("10.0.0.1", "20.0.0.1", 1000, 80),
                    payload=b"req",
                    timestamp_ns=timestamp,
                )
            )
    return packets


def main():
    packets = phased_traffic()
    baseline = BessPlatform(ServiceChain(build_chain()))
    speedybox = BessPlatform(SpeedyBox(build_chain()))

    base_pattern = []
    sbox_pattern = []
    flips = []
    last_version = 0
    fid = None
    for index, packet in enumerate(packets):
        base_pkt, sbox_pkt = packet.clone(), packet.clone()
        baseline.process(base_pkt)
        report = speedybox.process(sbox_pkt).report
        base_pattern.append(base_pkt.dropped)
        sbox_pattern.append(sbox_pkt.dropped)
        fid = report.fid
        rule = speedybox.runtime.global_mat.peek(fid)
        if rule is not None and rule.version != last_version:
            if last_version:
                action = "DROP" if rule.consolidated.drop else "FORWARD"
                flips.append((index, f"rule v{rule.version}: -> {action}"))
            last_version = rule.version

    def render(pattern):
        return "".join("." if not dropped else "X" for dropped in pattern)

    print("verdicts per packet ('.'=forwarded, 'X'=policed):")
    print(f"  original : {render(base_pattern)}")
    print(f"  speedybox: {render(sbox_pattern)}")
    assert base_pattern == sbox_pattern
    print("\npatterns identical ✓")

    print("\nfast-path rule flips (Event Table reconsolidations):")
    for index, what in flips:
        print(f"  packet {index:3d}: {what}")

    stats = speedybox.runtime.stats()
    print(f"\nevents triggered: {stats['events_triggered']:.0f}  "
          f"reconsolidations: {stats['reconsolidations']:.0f}")
    print("\nfinal rule state:")
    print(describe_rule(speedybox.runtime, fid))


if __name__ == "__main__":
    main()
