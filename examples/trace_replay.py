#!/usr/bin/env python3
"""Capture and replay: the trace-driven workflow.

1. Synthesise a datacenter workload with ON/OFF arrival timestamps.
2. Save it to a .sbtr capture file (the pcap-lite format).
3. Load it back and replay it — paced by its own timestamps — through a
   chain with and without SpeedyBox, comparing loaded p99 latency.
4. Capture the SpeedyBox replay with the packet tracer and export a
   Chrome trace: open it in chrome://tracing or https://ui.perfetto.dev
   to see each packet's residency on the chain core and the ring
   occupancy breathing with the ON/OFF arrival bursts.

This mirrors how the paper's Fig. 9 experiment replays the Benson et al.
datacenter capture against its testbed.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import BessPlatform, PacketTracer, ServiceChain, SpeedyBox
from repro.net.trace import load_trace, write_trace
from repro.nf import IPFilter, Monitor, SnortIDS
from repro.nf.snort.rules import parse_rules
from repro.stats import format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator
from repro.traffic.generator import clone_packets

RULES_TEXT = """
alert tcp any any -> any any (msg:"two-stage: login"; content:"USER admin"; flowbits:set,admin; flowbits:noalert; sid:1;)
alert tcp any any -> any any (msg:"two-stage: admin cmd"; content:"|3b 3b|"; flowbits:isset,admin; sid:2;)
"""


def build_chain():
    return [IPFilter("firewall"), SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def main():
    # 1. Synthesise with timestamps.
    config = DatacenterTraceConfig(flows=60, seed=99, lognormal_mu=1.8)
    generator = DatacenterTraceGenerator(config, parse_rules(RULES_TEXT))
    packets = generator.timestamped_packets()
    span_us = (packets[-1].timestamp_ns - packets[0].timestamp_ns) / 1000.0
    print(f"synthesised {len(packets)} packets over {span_us:.0f} us")

    # 2. Capture to disk.
    capture = Path(tempfile.gettempdir()) / "speedybox-demo.sbtr"
    write_trace(capture, packets)
    print(f"captured to {capture} ({capture.stat().st_size} bytes)")

    # 3. Load and replay.
    replayed = load_trace(capture)
    assert len(replayed) == len(packets)

    rows = []
    for label, runtime_cls in (("original", ServiceChain), ("speedybox", SpeedyBox)):
        platform = BessPlatform(runtime_cls(build_chain()))
        result = platform.run_load(clone_packets(replayed), use_timestamps=True)
        rows.append(
            [
                label,
                f"{result.latency_percentile(0.5) / 1000:.3f}",
                f"{result.latency_percentile(0.99) / 1000:.3f}",
                f"{result.throughput_mpps:.3f}",
            ]
        )
    print(format_table(
        ["variant", "p50 us", "p99 us", "achieved Mpps"],
        rows,
        title="timestamp-paced replay through IPFilter -> Snort -> Monitor",
    ))
    print("\n(the capture replays identically every run: the .sbtr file is")
    print("byte-exact, including payloads that exercise Snort's flowbits)")

    # 4. Replay once more with tracing on; export a Chrome trace.
    tracer = PacketTracer()
    platform = BessPlatform(SpeedyBox(build_chain()), tracer=tracer)
    platform.run_load(clone_packets(replayed), use_timestamps=True)
    trace_path = Path(tempfile.gettempdir()) / "speedybox-replay-trace.json"
    events = tracer.write_chrome(trace_path)
    print(f"\nwrote {events} trace events to {trace_path}")
    print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
