#!/usr/bin/env python3
"""Quickstart: wrap a service chain in SpeedyBox and watch latency fall.

Builds the simplest interesting chain — a NAT in front of a firewall and
a monitor — runs the same traffic through the original chain and through
SpeedyBox on the BESS platform model, and prints per-packet latency plus
what the framework did under the hood.

Run:  python examples/quickstart.py
"""

from repro import BessPlatform, ServiceChain, SpeedyBox
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def build_chain():
    """A fresh chain instance (one per runtime: NFs hold per-flow state)."""
    return [
        MazuNAT("nat", external_ip="203.0.113.1", internal_prefix="10.0.0.0/8"),
        Monitor("monitor"),
        IPFilter("firewall"),
    ]


def main():
    # One TCP flow: handshake, ten data packets, teardown.
    flow = FlowSpec.tcp(
        "10.0.0.42", "93.184.216.34", 40000, 80,
        packets=10, payload=b"GET / HTTP/1.1", handshake=True, fin=True,
    )
    packets = TrafficGenerator([flow]).packets()

    original = BessPlatform(ServiceChain(build_chain()))
    speedybox = BessPlatform(SpeedyBox(build_chain()))

    rows = []
    for index, (orig_pkt, sbox_pkt) in enumerate(
        zip(clone_packets(packets), clone_packets(packets))
    ):
        orig_outcome = original.process(orig_pkt)
        sbox_outcome = speedybox.process(sbox_pkt)
        rows.append(
            [
                index,
                sbox_outcome.report.path.value,
                f"{orig_outcome.latency_us:.3f}",
                f"{sbox_outcome.latency_us:.3f}",
                "identical" if orig_pkt.serialize() == sbox_pkt.serialize() else "DIFFER!",
            ]
        )

    print(format_table(
        ["pkt", "speedybox path", "original (us)", "speedybox (us)", "output"],
        rows,
        title="NAT -> Monitor -> Firewall, one TCP flow",
    ))

    runtime = speedybox.runtime
    print()
    print(f"slow-path packets : {runtime.slow_packets}")
    print(f"fast-path packets : {runtime.fast_packets}")
    print(f"global MAT rules  : {len(runtime.global_mat)} (flow deleted on FIN)")
    fid_consolidations = runtime.global_mat.consolidations
    print(f"consolidations    : {fid_consolidations}")

    monitor = runtime.nf_by_name["monitor"]
    print(f"monitor counted   : {monitor.total_packets()} packets "
          f"(baseline counted {original.runtime.nfs[1].total_packets()})")


if __name__ == "__main__":
    main()
