#!/usr/bin/env python3
"""The paper's Motivation chain with a mid-stream load-balancer failover.

Chain 1 of §VII-B3: MazuNAT -> Maglev -> Monitor -> IPFilter, driven by
a synthetic datacenter trace.  Mid-run we kill the backend one flow is
pinned to; Maglev's registered Event Table entry reroutes that flow on
the fast path — the §VII-C2 scenario at enterprise scale.

Run:  python examples/enterprise_chain.py
"""

from repro import BessPlatform, ServiceChain, SpeedyBox
from repro.net.addresses import ip_to_str
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor
from repro.nf.maglev import Backend
from repro.stats import Distribution, format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator
from repro.traffic.generator import clone_packets


def build_chain():
    backends = [Backend.make(f"web-{i}", f"192.168.1.{i + 1}", 8080) for i in range(4)]
    return [
        MazuNAT("nat", external_ip="203.0.113.1", internal_prefix="10.0.0.0/8"),
        MaglevLoadBalancer("maglev", backends=backends, table_size=131),
        Monitor("monitor"),
        IPFilter("firewall"),
    ]


def main():
    config = DatacenterTraceConfig(flows=60, seed=7, lognormal_mu=2.0)
    specs = DatacenterTraceGenerator(config).generate_flows()
    packets = TrafficGenerator(specs, interleave="round_robin").packets()
    print(f"trace: {len(specs)} flows, {len(packets)} packets")

    original = BessPlatform(ServiceChain(build_chain()))
    speedybox = BessPlatform(SpeedyBox(build_chain()))

    orig_times = Distribution()
    sbox_times = Distribution()
    failover_done = False

    orig_stream = clone_packets(packets)
    sbox_stream = clone_packets(packets)
    for index, (orig_pkt, sbox_pkt) in enumerate(zip(orig_stream, sbox_stream)):
        if index == len(packets) // 2 and not failover_done:
            # Fail whichever backend currently carries the most flows —
            # in BOTH runs, so outputs stay comparable.
            for platform in (original, speedybox):
                maglev = next(nf for nf in platform.runtime.nfs if nf.name == "maglev")
                load = {}
                for backend in maglev.conntrack.values():
                    load[backend.name] = load.get(backend.name, 0) + 1
                victim = max(load, key=load.get)
                maglev.fail_backend(victim)
            print(f"\n*** backend '{victim}' failed after packet {index} ***\n")
            failover_done = True

        orig_times.add(original.process(orig_pkt).latency_us)
        sbox_times.add(speedybox.process(sbox_pkt).latency_us)

    mismatches = sum(
        1
        for a, b in zip(orig_stream, sbox_stream)
        if a.dropped != b.dropped or (not a.dropped and a.serialize() != b.serialize())
    )

    sbox_runtime = speedybox.runtime
    maglev = sbox_runtime.nf_by_name["maglev"]
    print(format_table(
        ["metric", "original", "speedybox"],
        [
            ["p50 latency (us)", f"{orig_times.p50:.3f}", f"{sbox_times.p50:.3f}"],
            ["p99 latency (us)", f"{orig_times.p99:.3f}", f"{sbox_times.p99:.3f}"],
            ["mean latency (us)", f"{orig_times.mean:.3f}", f"{sbox_times.mean:.3f}"],
        ],
        title="Chain 1: MazuNAT -> Maglev -> Monitor -> IPFilter",
    ))
    print()
    print(f"latency reduction at p50 : {100 * (1 - sbox_times.p50 / orig_times.p50):.1f}%")
    print(f"fast-path share          : "
          f"{sbox_runtime.fast_packets}/{sbox_runtime.fast_packets + sbox_runtime.slow_packets}")
    print(f"events triggered         : {sbox_runtime.event_table.total_triggered} "
          f"(flows rerouted off the failed backend)")
    print(f"output mismatches        : {mismatches} (must be 0)")
    healthy = [b for b in maglev.backends if b.healthy]
    print(f"healthy backends         : {[f'{b.name}@{ip_to_str(b.ip)}' for b in healthy]}")


if __name__ == "__main__":
    main()
