#!/usr/bin/env python3
"""An IDS pipeline: firewall -> mini-Snort -> monitor (Chain 2, §VII-B3).

Writes a small Snort rule set, synthesises traffic where 20% of the
flows carry payloads matching the rules, and shows that SpeedyBox's fast
path produces byte-identical alerts/logs while cutting flow processing
time — the paper's Chain 2 experiment end to end.

Run:  python examples/ids_pipeline.py
"""

from repro import BessPlatform, ServiceChain, SpeedyBox
from repro.nf import IPFilter, Monitor, SnortIDS
from repro.nf.snort.rules import parse_rules
from repro.stats import Distribution, format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator
from repro.traffic.generator import clone_packets

RULES_TEXT = """
# A tiny but realistic rule set: two alerts, one log, one trusted host.
alert tcp any any -> any any (msg:"C2 beacon";  content:"malware-beacon"; sid:9001; priority:1;)
alert tcp any any -> any 8080 (msg:"shellcode"; content:"|90 90 90 90|"; sid:9002;)
log   tcp any any -> any any (msg:"plain HTTP"; content:"GET /"; nocase; sid:9003;)
pass  tcp 10.1.1.1 any -> any any (msg:"scanner exemption"; sid:9004;)
"""


def build_chain():
    return [IPFilter("firewall"), SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def main():
    rules = parse_rules(RULES_TEXT)
    config = DatacenterTraceConfig(
        flows=80, seed=42, lognormal_mu=2.0, malicious_fraction=0.2
    )
    specs = DatacenterTraceGenerator(config, rules).generate_flows()
    packets = TrafficGenerator(specs, interleave="round_robin").packets()
    print(f"trace: {len(specs)} flows / {len(packets)} packets, ~20% malicious")

    original = BessPlatform(ServiceChain(build_chain()))
    speedybox = BessPlatform(SpeedyBox(build_chain()))

    orig_latency = Distribution()
    sbox_latency = Distribution()
    for orig_pkt, sbox_pkt in zip(clone_packets(packets), clone_packets(packets)):
        orig_latency.add(original.process(orig_pkt).latency_us)
        sbox_latency.add(speedybox.process(sbox_pkt).latency_us)

    orig_snort = original.runtime.nfs[1]
    sbox_snort = speedybox.runtime.nf_by_name["snort"]

    print(format_table(
        ["metric", "original", "speedybox"],
        [
            ["alerts", len(orig_snort.alerts), len(sbox_snort.alerts)],
            ["log entries", len(orig_snort.logs), len(sbox_snort.logs)],
            ["p50 latency (us)", f"{orig_latency.p50:.3f}", f"{sbox_latency.p50:.3f}"],
            ["p99 latency (us)", f"{orig_latency.p99:.3f}", f"{sbox_latency.p99:.3f}"],
        ],
        title="Chain 2: IPFilter -> Snort -> Monitor",
    ))

    assert orig_snort.alerts == sbox_snort.alerts, "alert streams must be identical"
    assert orig_snort.logs == sbox_snort.logs, "log streams must be identical"
    print("\nalert/log streams byte-identical across both paths ✓")

    alerted_flows = sorted({str(record.flow) for record in sbox_snort.alerts})
    print(f"\nflows that raised alerts ({len(alerted_flows)}):")
    for flow in alerted_flows[:8]:
        print(f"  {flow}")
    if len(alerted_flows) > 8:
        print(f"  ... and {len(alerted_flows) - 8} more")

    print(f"\np50 latency reduction: {100 * (1 - sbox_latency.p50 / orig_latency.p50):.1f}%")
    # Snort and Monitor state functions are payload-READ and payload-
    # IGNORE: Table I says they run in one parallel wave on the fast path.
    example_rule = next(iter(speedybox.runtime.global_mat.flows()), None)
    if example_rule is not None:
        rule = speedybox.runtime.global_mat.peek(example_rule)
        print(f"fast-path schedule for one flow: {rule.schedule!r}")


if __name__ == "__main__":
    main()
