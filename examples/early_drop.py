#!/usr/bin/env python3
"""Early packet drop + the Event Table's drop event (Table III & Fig. 3).

Two demonstrations in one chain:

1. A firewall at the END of the chain blacklists one destination — the
   original chain carries those packets through every NF before
   dropping; SpeedyBox drops them at the classifier (Table III, ~65%
   CPU saved).
2. A DoS-prevention NF at the FRONT counts per-flow packets — when a
   flow exceeds its budget, the registered event flips the flow's
   consolidated action from FORWARD to DROP at runtime (Fig. 3).

Run:  python examples/early_drop.py
"""

from repro import BessPlatform, ServiceChain, SpeedyBox
from repro.nf import DosPrevention, IPFilter, Monitor
from repro.nf.ipfilter import AclRule, Verdict
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def build_chain():
    return [
        DosPrevention("dos", threshold=50, mode="packets"),
        Monitor("monitor"),
        IPFilter(
            "firewall",
            rules=[AclRule.make(dst="198.51.100.66", verdict=Verdict.DROP)],
        ),
    ]


def main():
    flows = [
        # A well-behaved flow to an allowed destination.
        FlowSpec.tcp("10.0.0.1", "93.184.216.34", 1111, 80, packets=40, payload=b"ok"),
        # A flow to the blacklisted destination: late drop vs early drop.
        FlowSpec.tcp("10.0.0.2", "198.51.100.66", 2222, 80, packets=40, payload=b"blocked"),
        # A flow that exceeds the DoS budget: the event flips it to drop.
        FlowSpec.tcp("10.0.0.3", "93.184.216.34", 3333, 80, packets=80, payload=b"flood"),
    ]
    packets = TrafficGenerator(flows, interleave="sequential").packets()

    original = BessPlatform(ServiceChain(build_chain()))
    speedybox = BessPlatform(SpeedyBox(build_chain()))

    rows = []
    for label, spec in (("allowed", flows[0]), ("blacklisted", flows[1]), ("flooding", flows[2])):
        stream = TrafficGenerator([spec]).packets()
        orig = [original.process(p) for p in clone_packets(stream)]
        sbox = [speedybox.process(p) for p in clone_packets(stream)]
        rows.append(
            [
                label,
                f"{sum(o.work_cycles for o in orig):.0f}",
                f"{sum(o.work_cycles for o in sbox):.0f}",
                f"{sum(1 for o in orig if o.dropped)}/{len(orig)}",
                f"{sum(1 for o in sbox if o.dropped)}/{len(sbox)}",
            ]
        )

    print(format_table(
        ["flow", "orig cycles", "sbox cycles", "orig dropped", "sbox dropped"],
        rows,
        title="DoS -> Monitor -> Firewall: per-flow CPU and drop decisions",
    ))

    runtime = speedybox.runtime
    blacklisted_cycles_orig = float(rows[1][1])
    blacklisted_cycles_sbox = float(rows[1][2])
    saving = 100 * (1 - blacklisted_cycles_sbox / blacklisted_cycles_orig)
    print(f"\nblacklisted flow: early drop saves {saving:.1f}% CPU over the whole flow.")
    print("(Table III's stateless firewall-only chain saves ~65% per packet; here")
    print("the DoS and Monitor state functions still run on dropped-flow packets —")
    print("they sit BEFORE the firewall, so their counters must keep counting.)")
    print(f"DoS events fired: {runtime.event_table.total_triggered} "
          f"(flooding flow flipped to DROP mid-stream)")

    dos = runtime.nf_by_name["dos"]
    baseline_dos = original.runtime.nfs[0]
    print(f"blocked-packet counters identical: "
          f"{dos.blocked_flows == baseline_dos.blocked_flows}")


if __name__ == "__main__":
    main()
