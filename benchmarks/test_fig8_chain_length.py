"""Figure 8 — supporting long service chains.

Paper setup: chains of 1-9 IPFilters (ACLs tuned to avoid drops); ONVM
is capped at 5 NFs by the testbed's 14 cores.  Plots per-packet latency
and processing rate for all four configurations.

Paper anchors: SpeedyBox's latency is "nearly irrelevant to the chain
length" while the original chains' latency climbs with every NF;
SpeedyBox holds BESS's rate high on long chains; ONVM's pipelined rate
stays flat regardless.
"""

from benchmarks.harness import make_platform, save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.platform import OpenNetVMPlatform
from repro.stats import format_table
from repro.traffic.generator import clone_packets

LENGTHS = list(range(1, 10))


def build_chain(n):
    return [IPFilter(f"ipfilter{i}") for i in range(n)]


def run_fig8():
    # Enough packets that the single slow initial packet (whose cost
    # grows with chain length) is amortised out of the rate measurement.
    packets = uniform_flow_packets(packets=120)
    results = {}
    for platform_name in ("bess", "onvm"):
        for variant, runtime_cls in (("original", ServiceChain), ("speedybox", SpeedyBox)):
            for n in LENGTHS:
                if platform_name == "onvm" and n > OpenNetVMPlatform.MAX_CHAIN_LENGTH:
                    continue
                platform = make_platform(platform_name, runtime_cls(build_chain(n)))
                load = platform.run_load(clone_packets(packets))
                platform.reset()
                outcomes = platform.process_all(clone_packets(packets[:4]))
                results[(platform_name, variant, n)] = {
                    "latency_us": outcomes[-1].latency_ns / 1000.0,
                    "rate_mpps": load.throughput_mpps,
                }
    return results


def _cell(results, platform, variant, n, metric):
    entry = results.get((platform, variant, n))
    return entry[metric] if entry is not None else "-"


def _report(results):
    for metric, label, fname in (
        ("latency_us", "Processing Latency (us)", "fig8_latency"),
        ("rate_mpps", "Processing Rate (Mpps)", "fig8_rate"),
    ):
        rows = []
        for n in LENGTHS:
            rows.append(
                [
                    n,
                    _cell(results, "bess", "original", n, metric),
                    _cell(results, "bess", "speedybox", n, metric),
                    _cell(results, "onvm", "original", n, metric),
                    _cell(results, "onvm", "speedybox", n, metric),
                ]
            )
        metrics = {
            f"{platform}_{variant}_{metric}_n{n}": value
            for (platform, variant, n), entry in results.items()
            for value in [entry[metric]]
        }
        text = format_table(
            ["Chain Length", "BESS", "BESS w/ SBox", "ONVM", "ONVM w/ SBox"],
            rows,
            title=f"Figure 8: {label} vs service chain length (ONVM max 5: core limit)",
        )
        save_result(fname, text, metrics=metrics)


def _assert_shape(results):
    def latency(platform, variant, n):
        return results[(platform, variant, n)]["latency_us"]

    def rate(platform, variant, n):
        return results[(platform, variant, n)]["rate_mpps"]

    # ONVM rows stop at 5 — the testbed core limit is enforced.
    assert ("onvm", "original", 6) not in results
    assert ("onvm", "original", 5) in results

    # Latency: originals grow ~linearly with chain length.
    for platform, max_n in (("bess", 9), ("onvm", 5)):
        assert latency(platform, "original", max_n) > 2.5 * latency(platform, "original", 1)

    # Latency: SpeedyBox is nearly flat in chain length.
    assert latency("bess", "speedybox", 9) < 1.1 * latency("bess", "speedybox", 1)
    assert latency("onvm", "speedybox", 5) < 1.1 * latency("onvm", "speedybox", 1)

    # ...and beats the original heavily on long chains (paper: ~4x at 9).
    assert latency("bess", "original", 9) / latency("bess", "speedybox", 9) > 3.0

    # Rate: BESS's original decays with length; SpeedyBox holds it up
    # (the residual slope is the one slow initial packet amortised over
    # the run).
    assert rate("bess", "original", 9) < 0.45 * rate("bess", "original", 1)
    assert rate("bess", "speedybox", 9) > 0.85 * rate("bess", "speedybox", 1)
    assert rate("bess", "speedybox", 9) > 2.0 * rate("bess", "original", 9)

    # Rate: ONVM's pipeline keeps the original roughly flat.
    assert rate("onvm", "original", 5) > 0.75 * rate("onvm", "original", 1)


def test_fig8_chain_length(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    _report(results)
    _assert_shape(results)
