"""Ablation — Global MAT capacity under flow churn.

The 20-bit FID space and rule memory are finite; ``SpeedyBox(max_flows=N)``
bounds the Global MAT with LRU eviction.  This ablation drives many
concurrent flows through a small table and measures the fast-path hit
rate and eviction count as capacity shrinks — the sizing curve an
operator would consult.
"""

from benchmarks.harness import save_result
from repro.core.framework import SpeedyBox
from repro.nf import Monitor
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator

FLOWS = 32
PACKETS_PER_FLOW = 8


WORKING_SET = 8


def traffic():
    """Staggered arrivals: at any instant ~WORKING_SET flows are live.

    Flows come in waves of WORKING_SET; packets round-robin inside a
    wave.  The live working set is therefore WORKING_SET flows — the
    realistic regime where capacity either covers the working set (high
    hit rate) or thrashes (LRU churn).
    """
    packets = []
    for wave_start in range(0, FLOWS, WORKING_SET):
        specs = [
            FlowSpec.tcp(
                "10.0.0.1", "10.0.0.2", 1000 + i, 80,
                packets=PACKETS_PER_FLOW, payload=b"x",
            )
            for i in range(wave_start, min(wave_start + WORKING_SET, FLOWS))
        ]
        packets.extend(TrafficGenerator(specs, interleave="round_robin").packets())
    return packets


def run_one(max_flows):
    sbox = SpeedyBox([Monitor("m")], max_flows=max_flows)
    packets = traffic()
    for packet in packets:
        sbox.process(packet)
    total = len(packets)
    return {
        "fast_rate": sbox.fast_packets / total,
        "evictions": sbox.global_mat.evictions,
        "consolidations": sbox.global_mat.consolidations,
    }


def run_ablation():
    capacities = [None, 32, 16, 8, 4, 2]
    return {capacity: run_one(capacity) for capacity in capacities}


def _report(results):
    rows = []
    for capacity, data in results.items():
        label = "unbounded" if capacity is None else str(capacity)
        rows.append(
            [
                label,
                f"{100 * data['fast_rate']:.1f}%",
                data["evictions"],
                data["consolidations"],
            ]
        )
    save_result(
        "ablation_flow_table",
        format_table(
            ["max_flows", "fast-path rate", "evictions", "consolidations"],
            rows,
            title=f"Ablation: Global MAT capacity vs hit rate ({FLOWS} concurrent flows)",
        ),
    )


def _assert_shape(results):
    # Ample capacity: one slow packet per flow, everything else fast.
    full = results[None]
    expected_fast = (FLOWS * (PACKETS_PER_FLOW - 1)) / (FLOWS * PACKETS_PER_FLOW)
    assert abs(full["fast_rate"] - expected_fast) < 0.01
    assert full["evictions"] == 0
    assert results[32]["evictions"] == 0  # capacity == flow count fits

    # Capacity covering the live working set keeps the hit rate at the
    # unbounded level (old waves' rules are evicted harmlessly).
    assert abs(results[8]["fast_rate"] - full["fast_rate"]) < 0.01
    assert abs(results[16]["fast_rate"] - full["fast_rate"]) < 0.01

    # Below the working set, LRU + round-robin thrashes: hit rate
    # collapses and every miss re-records and re-consolidates.
    rates = [results[c]["fast_rate"] for c in (8, 4, 2)]
    assert rates == sorted(rates, reverse=True)
    assert results[2]["fast_rate"] < 0.2
    assert results[2]["evictions"] > results[8]["evictions"]
    assert results[2]["consolidations"] > results[None]["consolidations"]


def test_ablation_flow_table(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
