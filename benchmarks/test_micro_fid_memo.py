"""Microbenchmark: memoized ``fid_of`` vs the raw FNV-1a hash.

``fid_of`` walks 13 bytes of FNV-1a in pure Python per call; the LRU
memo means a steady-state flow pays that once and its subsequent
packets pay a cache hit.  This measures both sides over a realistic
mixed workload (a few hundred live flows, many packets each) and
records the per-call costs and the resulting speedup in
``BENCH_micro_fid_memo.json``.
"""

from __future__ import annotations

import time

from benchmarks.harness import save_result
from repro.core.classifier import fid_of
from repro.net.flow import FiveTuple, PROTO_TCP

FLOWS = 256
LOOKUPS = 200_000


def make_tuples():
    return [
        FiveTuple.make(f"10.{i >> 8}.{i & 0xFF}.1", "20.0.0.1", 4000 + i, 80, PROTO_TCP)
        for i in range(FLOWS)
    ]


def run_micro():
    tuples = make_tuples()
    uncached = fid_of.__wrapped__
    stream = [tuples[i % FLOWS] for i in range(LOOKUPS)]

    started = time.perf_counter()
    for five_tuple in stream:
        uncached(five_tuple)
    raw_s = time.perf_counter() - started

    fid_of.cache_clear()
    started = time.perf_counter()
    for five_tuple in stream:
        fid_of(five_tuple)
    memo_s = time.perf_counter() - started

    # The memo must be transparent: identical FIDs either way.
    assert [fid_of(t) for t in tuples] == [uncached(t) for t in tuples]

    return {
        "lookups": float(LOOKUPS),
        "flows": float(FLOWS),
        "raw_ns_per_call": raw_s / LOOKUPS * 1e9,
        "memo_ns_per_call": memo_s / LOOKUPS * 1e9,
        "speedup": raw_s / memo_s,
        "hits": float(fid_of.cache_info().hits),
    }


def test_micro_fid_memo(benchmark):
    metrics = benchmark.pedantic(run_micro, rounds=1, iterations=1)
    save_result(
        "micro_fid_memo",
        (
            f"fid_of over {LOOKUPS} lookups across {FLOWS} flows:\n"
            f"raw FNV-1a : {metrics['raw_ns_per_call']:.0f} ns/call\n"
            f"memoized   : {metrics['memo_ns_per_call']:.0f} ns/call\n"
            f"speedup    : {metrics['speedup']:.1f}x"
        ),
        metrics=metrics,
    )
    assert metrics["speedup"] > 3.0
    assert metrics["hits"] >= LOOKUPS - FLOWS
