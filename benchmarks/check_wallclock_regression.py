"""CI perf gate: compare a fresh wallclock run against the committed baseline.

Usage::

    python benchmarks/check_wallclock_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.25]

Absolute seconds are machine-dependent, so the gate normalises by the
legacy run: the legacy engine is the same code in both files, so the
ratio ``current_legacy / baseline_legacy`` measures how much slower or
faster *this machine* is, and the fast run is held to the baseline
scaled by that factor.  A case regresses when its normalised
seconds-per-100k-packets exceeds the baseline by more than the
threshold (default 25%), or when the fast/legacy results stopped being
numerically identical.  Exit code 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metrics(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    return payload["metrics"]


_SUFFIX = "_fast_s_per_100k"


def case_names(metrics: dict):
    return sorted(key[: -len(_SUFFIX)] for key in metrics if key.endswith(_SUFFIX))


#: lane-only scale cells (no legacy twin — it would take minutes):
#: ``<case>_s_per_100k`` normalised by the named reference case's legacy leg
_SCALE_CELLS = {"bess_batch_10m": "bess_batch_1m"}


def check_scale_cells(baseline: dict, current: dict, threshold: float) -> int:
    failures = 0
    for case, reference in _SCALE_CELLS.items():
        base_fast = baseline.get(f"{case}_s_per_100k")
        if base_fast is None:
            continue
        cur_fast = current.get(f"{case}_s_per_100k")
        base_legacy = baseline.get(f"{reference}_legacy_s_per_100k")
        cur_legacy = current.get(f"{reference}_legacy_s_per_100k")
        if cur_fast is None or base_legacy is None or cur_legacy is None:
            print(f"FAIL {case}: missing from current results")
            failures += 1
            continue
        machine_scale = cur_legacy / base_legacy
        allowed = base_fast * machine_scale * (1.0 + threshold)
        status = "ok" if cur_fast <= allowed else "FAIL"
        print(
            f"{status:4s} {case}: lane {cur_fast:.3f}s/100k "
            f"(baseline {base_fast:.3f}, machine x{machine_scale:.2f}, "
            f"allowed {allowed:.3f}, speedup {cur_legacy / cur_fast:.1f}x)"
        )
        if cur_fast > allowed:
            failures += 1
    return failures


def check(baseline: dict, current: dict, threshold: float) -> int:
    failures = check_scale_cells(baseline, current, threshold)
    for case in case_names(baseline):
        base_fast = baseline[f"{case}_fast_s_per_100k"]
        base_legacy = baseline[f"{case}_legacy_s_per_100k"]
        cur_fast = current.get(f"{case}_fast_s_per_100k")
        cur_legacy = current.get(f"{case}_legacy_s_per_100k")
        if cur_fast is None or cur_legacy is None:
            print(f"FAIL {case}: missing from current results")
            failures += 1
            continue
        if current.get(f"{case}_identical") != 1.0:
            print(f"FAIL {case}: fast and legacy results are no longer identical")
            failures += 1
            continue
        machine_scale = cur_legacy / base_legacy
        allowed = base_fast * machine_scale * (1.0 + threshold)
        status = "ok" if cur_fast <= allowed else "FAIL"
        print(
            f"{status:4s} {case}: fast {cur_fast:.3f}s/100k "
            f"(baseline {base_fast:.3f}, machine x{machine_scale:.2f}, "
            f"allowed {allowed:.3f}, speedup {cur_legacy / cur_fast:.1f}x)"
        )
        if cur_fast > allowed:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_wallclock.json")
    parser.add_argument("current", help="freshly measured BENCH_wallclock.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs the normalised baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    failures = check(load_metrics(args.baseline), load_metrics(args.current), args.threshold)
    if failures:
        print(f"{failures} case(s) regressed beyond {args.threshold:.0%}")
        return 1
    print("wallclock perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
