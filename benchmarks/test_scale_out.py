"""Scale-out sweep — aggregate throughput of sharded chain replicas.

The paper's prototype is one chain instance; ``repro.scale`` replicates
it.  This benchmark sweeps 1..4 replicas on both platform models over a
uniform 64-flow workload and reports aggregate Mpps, p99 latency and the
speedup over one replica — the scale-out headline — plus a
migration-churn ablation: forcibly re-homing live flows mid-run must not
change delivered counts (zero loss) and barely moves the numbers.
"""

from benchmarks.harness import save_result
from repro.net.headers import TCP_FIN
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.scale import ScaleCluster
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

REPLICA_COUNTS = (1, 2, 3, 4)
FLOWS = 64


def build_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.80", port_range=(20000, 60000)),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def workload(flows=FLOWS, packets_per_flow=14):
    """Uniform long-lived flows: equal sizes so sharding imbalance, not
    workload skew, is what the sweep measures."""
    specs = [
        FlowSpec.tcp(
            f"10.3.{i // 250}.{i % 250 + 1}",
            f"99.2.0.{i % 200 + 1}",
            6000 + i,
            80,
            packets=packets_per_flow,
            handshake=True,
            fin=True,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=9).packets()


def sweep(platform_name, packets, churn=0):
    rows = {}
    for count in REPLICA_COUNTS:
        cluster = ScaleCluster(
            build_chain, platform=platform_name, replicas=count, buckets=128
        )
        migrations = 0
        if churn and count > 1:
            live = [p for p in packets if not p.l4.has_flag(TCP_FIN)]
            for packet in clone_packets(live[: len(live) // 2]):
                cluster.process(packet)
            migrations = len(cluster.churn_flows(churn, seed=3))
        result = cluster.run_load(clone_packets(packets))
        rows[count] = {
            "mpps": result.total.throughput_mpps,
            "p99_us": result.total.latency_percentile(0.99) / 1000.0,
            "offered": result.total.offered,
            "delivered": result.total.delivered,
            "migrations": migrations,
        }
    return rows


def test_scale_out_sweep(benchmark):
    packets = workload()
    results = benchmark.pedantic(
        lambda: {name: sweep(name, packets) for name in ("bess", "onvm")},
        rounds=1,
        iterations=1,
    )

    table_rows = []
    metrics = {}
    for platform_name, rows in results.items():
        base = rows[1]["mpps"]
        for count in REPLICA_COUNTS:
            row = rows[count]
            speedup = row["mpps"] / base
            table_rows.append(
                [
                    platform_name,
                    count,
                    row["offered"],
                    row["delivered"],
                    f"{row['mpps']:.2f}",
                    f"{row['p99_us']:.1f}",
                    f"{speedup:.2f}x",
                ]
            )
            metrics[f"{platform_name}_{count}r_mpps"] = round(row["mpps"], 3)
            metrics[f"{platform_name}_{count}r_p99_us"] = round(row["p99_us"], 2)
        metrics[f"{platform_name}_speedup_4r"] = round(rows[4]["mpps"] / base, 3)

    text = format_table(
        ["platform", "replicas", "offered", "delivered", "Mpps", "p99 us", "speedup"],
        table_rows,
        title=f"scale-out sweep, {FLOWS} uniform flows, chain nat|monitor|firewall",
    )
    save_result("scale_out", text, metrics=metrics)

    for platform_name, rows in results.items():
        for count in REPLICA_COUNTS:
            assert rows[count]["delivered"] == rows[count]["offered"]
    # The headline acceptance: ONVM aggregate throughput scales >= 3x
    # from one replica to four.
    assert metrics["onvm_speedup_4r"] >= 3.0, metrics["onvm_speedup_4r"]


def test_migration_churn_ablation(benchmark):
    packets = workload()
    results = benchmark.pedantic(
        lambda: {
            "baseline": sweep("onvm", packets),
            "churned": sweep("onvm", packets, churn=16),
        },
        rounds=1,
        iterations=1,
    )

    table_rows = []
    metrics = {}
    for count in REPLICA_COUNTS:
        base = results["baseline"][count]
        churned = results["churned"][count]
        table_rows.append(
            [
                count,
                f"{base['mpps']:.2f}",
                f"{churned['mpps']:.2f}",
                churned["migrations"],
                churned["delivered"],
            ]
        )
        metrics[f"baseline_{count}r_mpps"] = round(base["mpps"], 3)
        metrics[f"churned_{count}r_mpps"] = round(churned["mpps"], 3)
        metrics[f"migrations_{count}r"] = churned["migrations"]
        # Zero loss under churn: every offered packet still delivered.
        assert churned["delivered"] == churned["offered"]

    text = format_table(
        ["replicas", "Mpps (no churn)", "Mpps (churn 16)", "migrations", "delivered"],
        table_rows,
        title="migration-churn ablation on onvm (16 flows re-homed mid-run)",
    )
    save_result("scale_churn", text, metrics=metrics)
    assert any(metrics[f"migrations_{count}r"] > 0 for count in (2, 3, 4))
