"""Ablation — worker cores and the value of state-function parallelism.

Two design questions behind §V-C2:

1. How many worker cores does the parallel schedule actually need?
   (Latency vs ``worker_cores`` for a wide all-READ wave.)
2. What does the fork/join overhead cost when parallelism cannot help?
   (A WRITE-serialised chain where every wave has width 1.)
"""

from benchmarks.harness import save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import SyntheticNF
from repro.platform import BessPlatform, PlatformConfig
from repro.stats import format_table
from repro.traffic.generator import clone_packets

WIDE_WAVE = 6  # six parallelizable READ batches


def read_chain():
    return [
        SyntheticNF(f"reader{i}", sf_payload_class=PayloadClass.READ, sf_work_cycles=1500)
        for i in range(WIDE_WAVE)
    ]


def write_chain():
    return [
        SyntheticNF(f"writer{i}", sf_payload_class=PayloadClass.WRITE, sf_work_cycles=1500)
        for i in range(3)
    ]


def fast_latency_us(chain, worker_cores):
    config = PlatformConfig(worker_cores=worker_cores)
    platform = BessPlatform(SpeedyBox(chain), config)
    packets = uniform_flow_packets(packets=4)
    outcomes = platform.process_all(clone_packets(packets))
    return outcomes[-1].latency_ns / 1000.0


def run_ablation():
    results = {"workers": {}, "writers": {}}
    for workers in (1, 2, 3, 6, 12):
        results["workers"][workers] = fast_latency_us(read_chain(), workers)
    # WRITE batches serialise regardless of worker count.
    for workers in (1, 6):
        results["writers"][workers] = fast_latency_us(write_chain(), workers)
    # Baseline for context.
    platform = BessPlatform(ServiceChain(read_chain()))
    outcomes = platform.process_all(clone_packets(uniform_flow_packets(packets=4)))
    results["original_us"] = outcomes[-1].latency_ns / 1000.0
    return results


def _report(results):
    rows = [[w, f"{value:.3f}"] for w, value in sorted(results["workers"].items())]
    rows.append(["original chain", f"{results['original_us']:.3f}"])
    save_result(
        "ablation_worker_cores",
        format_table(
            ["worker cores", "fast-path latency (us)"],
            rows,
            title=f"Ablation: latency of one {WIDE_WAVE}-wide READ wave vs worker cores",
        ),
    )


def _assert_shape(results):
    workers = results["workers"]
    # More workers -> lower latency, monotonically, until saturation.
    assert workers[1] > workers[2] > workers[3] >= workers[6]
    # Beyond wave width there is nothing left to parallelise.
    assert workers[6] == workers[12]
    # Full width approaches 1/WIDE_WAVE of the single-worker wave time.
    speedup = workers[1] / workers[6]
    assert speedup > WIDE_WAVE * 0.55
    # Even one worker core (sequential execution with fork/join tax)
    # still beats the original chain: consolidation carries it.
    assert workers[1] < results["original_us"]
    # WRITE chains can't parallelise: worker count is irrelevant.
    assert results["writers"][1] == results["writers"][6]


def test_ablation_worker_cores(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
