"""Ablation — how often can events fire before consolidation stops paying?

Observation 2's premise is that events are *infrequent*.  The token-bucket
policer lets us dial event frequency directly: traffic offered right at
the policed rate makes the flow's verdict oscillate (many events), while
under-rate traffic never flips (no events).  We sweep the offered/policed
ratio and measure fast-path cost and rule churn — quantifying the premise
that SpeedyBox is built on.
"""

from benchmarks.harness import save_result
from repro.core.framework import SpeedyBox
from repro.nf import Monitor, TokenBucketPolicer
from repro.platform import BessPlatform
from repro.stats import format_table
from repro.traffic import FlowSpec
from repro.traffic.generator import packets_for_flow

POLICED_RATE_PPS = 100_000.0  # one token per 10 us
PACKETS = 400


def offered_packets(ratio):
    """One flow offered at ratio x the policed rate (timestamped)."""
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=PACKETS, payload=b"x")
    packets = packets_for_flow(spec)
    gap_ns = 1e9 / (POLICED_RATE_PPS * ratio)
    for index, packet in enumerate(packets):
        packet.timestamp_ns = index * gap_ns
    return packets


def run_one(ratio):
    chain = [TokenBucketPolicer("pol", rate_pps=POLICED_RATE_PPS, burst=4), Monitor("mon")]
    platform = BessPlatform(SpeedyBox(chain))
    outcomes = platform.process_all(offered_packets(ratio))
    runtime = platform.runtime
    stats = runtime.stats()
    fast = [o for o in outcomes if o.report.is_fast]
    mean_fast_cycles = sum(o.work_cycles for o in fast) / len(fast)
    return {
        "events_per_pkt": stats["events_triggered"] / stats["packets"],
        "reconsolidations": stats["reconsolidations"],
        "mean_fast_cycles": mean_fast_cycles,
        "dropped": sum(1 for o in outcomes if o.dropped),
    }


def run_ablation():
    return {ratio: run_one(ratio) for ratio in (0.5, 0.9, 1.1, 2.0, 5.0)}


def _report(results):
    rows = [
        [
            f"{ratio}x",
            f"{d['events_per_pkt']:.3f}",
            d["reconsolidations"],
            f"{d['mean_fast_cycles']:.0f}",
            d["dropped"],
        ]
        for ratio, d in sorted(results.items())
    ]
    save_result(
        "ablation_event_frequency",
        format_table(
            ["offered/policed", "events per pkt", "reconsolidations", "mean fast cycles", "dropped"],
            rows,
            title="Ablation: event frequency vs fast-path cost (policer + monitor)",
        ),
    )


def _assert_shape(results):
    # Under the rate: no oscillation, no reconsolidation, nothing dropped.
    calm = results[0.5]
    assert calm["events_per_pkt"] == 0.0
    assert calm["reconsolidations"] == 0
    assert calm["dropped"] == 0

    # Over the rate: events fire and rules churn...
    hot = results[2.0]
    assert hot["events_per_pkt"] > 0.0
    assert hot["reconsolidations"] > 0
    assert hot["dropped"] > 0

    # ...and the mean fast-path cost rises with event frequency (each
    # trigger pays condition checks + reconsolidation).
    assert hot["mean_fast_cycles"] > calm["mean_fast_cycles"]

    # Even at 5x overload the fast path stays bounded: events cost a
    # reconsolidation, not a chain walk.
    assert results[5.0]["mean_fast_cycles"] < 3.0 * calm["mean_fast_cycles"]


def test_ablation_event_frequency(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=2, iterations=1)
    _report(results)
    _assert_shape(results)
