"""Ablation — the load-latency curve.

The paper reports unloaded latency and saturation rate separately; this
ablation connects them: per-packet latency as a function of offered load
on the BESS model.  The original chain saturates at a lower offered rate,
so its queueing delay explodes earlier — SpeedyBox both lowers the
service time *and* pushes the knee of the curve to the right.  A classic
open-loop queueing result, reproduced on the discrete-event engine.
"""

from benchmarks.harness import save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.platform import BessPlatform
from repro.stats import format_table
from repro.traffic.generator import clone_packets

OFFERED_MPPS = [0.2, 0.4, 0.8, 1.2, 1.6, 2.0]


def build_chain():
    return [IPFilter(f"fw{i}") for i in range(4)]


def p99_us_at(runtime_cls, offered_mpps, packets):
    platform = BessPlatform(runtime_cls(build_chain()))
    inter_arrival_ns = 1000.0 / offered_mpps  # Mpps -> ns between packets
    result = platform.run_load(clone_packets(packets), inter_arrival_ns=inter_arrival_ns)
    return result.latency_percentile(0.99) / 1000.0


def run_ablation():
    packets = uniform_flow_packets(packets=200)
    results = {}
    for offered in OFFERED_MPPS:
        results[offered] = {
            "original": p99_us_at(ServiceChain, offered, packets),
            "speedybox": p99_us_at(SpeedyBox, offered, packets),
        }
    return results


def _report(results):
    rows = [
        [offered, f"{data['original']:.2f}", f"{data['speedybox']:.2f}"]
        for offered, data in sorted(results.items())
    ]
    metrics = {
        f"{variant}_p99_us_at_{offered}mpps": data[variant]
        for offered, data in sorted(results.items())
        for variant in ("original", "speedybox")
    }
    save_result(
        "ablation_load_latency",
        format_table(
            ["offered (Mpps)", "original p99 (us)", "speedybox p99 (us)"],
            rows,
            title="Ablation: p99 latency vs offered load (BESS, 4 x IPFilter)",
        ),
        metrics=metrics,
    )


def _assert_shape(results):
    low = OFFERED_MPPS[0]
    high = OFFERED_MPPS[-1]
    # At light load both run near their unloaded latency, SBox lower.
    assert results[low]["speedybox"] < results[low]["original"]
    # The original chain's capacity on this setup is ~0.85 Mpps: beyond
    # it, queueing blows its p99 up by an order of magnitude...
    assert results[high]["original"] > 10 * results[low]["original"]
    # ...while SpeedyBox (capacity ~2.3 Mpps) still serves 2.0 Mpps with
    # bounded queueing.
    assert results[high]["speedybox"] < 0.2 * results[high]["original"]
    # Latency is monotone in offered load for the original chain.
    original_curve = [results[o]["original"] for o in OFFERED_MPPS]
    assert original_curve == sorted(original_curve)


def test_ablation_load_latency(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    _report(results)
    _assert_shape(results)
