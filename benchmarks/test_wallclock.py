"""Wall-clock benchmark of the fast execution engine (perf gate source).

Runs the Figure-8 worst case — BESS, a 9-NF IPFilter chain, 100k
back-to-back packets — once with the fast engine (compiled flow closures
+ analytic replay, the default ``PlatformConfig``) and once with both
halves disabled (the legacy interpreted pass + generator DES), *in the
same process*, and asserts:

- the two runs' ``LoadResult``\\ s are numerically identical, including
  the per-packet latency list element for element;
- the fast engine is at least 5x faster.

The measured numbers land in ``BENCH_wallclock.json``;
``benchmarks/check_wallclock_regression.py`` compares a fresh run
against the committed baseline in CI, normalising machine speed by the
legacy run so the gate tracks the *ratio*, not absolute seconds.
"""

from __future__ import annotations

import time

from benchmarks.harness import make_platform, save_result, uniform_flow_packets
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.platform import PlatformConfig
from repro.traffic.generator import clone_packets

PACKETS = 100_000
REPEATS = 3
MIN_SPEEDUP = 5.0

LEGACY = dict(compiled_flows=False, analytic_replay=False)

CASES = {
    "bess_n9": ("bess", 9),
    "onvm_n5": ("onvm", 5),
}


def build_chain(n):
    return [IPFilter(f"ipfilter{i}") for i in range(n)]


def timed_run(platform_name, length, packets, legacy):
    config = PlatformConfig(**LEGACY) if legacy else None
    kwargs = {"config": config} if config is not None else {}
    platform = make_platform(platform_name, SpeedyBox(build_chain(length)), **kwargs)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    return time.perf_counter() - started, result


def identical(a, b):
    return (
        a.offered == b.offered
        and a.delivered == b.delivered
        and a.dropped == b.dropped
        and a.makespan_ns == b.makespan_ns
        and a.latencies_ns == b.latencies_ns
    )


def run_wallclock():
    packets = uniform_flow_packets(packets=PACKETS)
    results = {}
    for case, (platform_name, length) in CASES.items():
        fast_s = min(
            timed_run(platform_name, length, packets, legacy=False)[0]
            for __ in range(REPEATS)
        )
        # One timed legacy pass is ~10-20x the fast pass; keep its result
        # for the equality check and best-of over the remaining repeats.
        legacy_times = []
        legacy_result = None
        for __ in range(REPEATS):
            seconds, legacy_result = timed_run(platform_name, length, packets, legacy=True)
            legacy_times.append(seconds)
        legacy_s = min(legacy_times)
        __, fast_result = timed_run(platform_name, length, packets, legacy=False)
        results[case] = {
            "fast_s": fast_s,
            "legacy_s": legacy_s,
            "speedup": legacy_s / fast_s,
            "fast_s_per_100k": fast_s * (100_000 / PACKETS),
            "legacy_s_per_100k": legacy_s * (100_000 / PACKETS),
            "identical": identical(fast_result, legacy_result),
        }
    return results


def _report(results):
    lines = [
        f"{case}: fast={entry['fast_s']:.3f}s legacy={entry['legacy_s']:.3f}s "
        f"speedup={entry['speedup']:.2f}x identical={entry['identical']}"
        for case, entry in results.items()
    ]
    metrics = {
        f"{case}_{key}": float(value)
        for case, entry in results.items()
        for key, value in entry.items()
    }
    save_result(
        "wallclock",
        "Fast engine vs legacy (interpreted + DES), best of "
        f"{REPEATS}, {PACKETS} packets:\n" + "\n".join(lines),
        metrics=metrics,
    )


def test_wallclock(benchmark):
    results = benchmark.pedantic(run_wallclock, rounds=1, iterations=1)
    _report(results)
    for case, entry in results.items():
        assert entry["identical"], f"{case}: fast and legacy results diverged"
    assert results["bess_n9"]["speedup"] >= MIN_SPEEDUP, (
        f"fast engine only {results['bess_n9']['speedup']:.2f}x on bess_n9 "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert results["onvm_n5"]["speedup"] >= 2.0
