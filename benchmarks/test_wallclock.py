"""Wall-clock benchmark of the fast execution engine (perf gate source).

Runs the Figure-8 worst case — BESS, a 9-NF IPFilter chain, 100k
back-to-back packets — once with the fast engine (compiled flow closures
+ analytic replay, the default ``PlatformConfig``) and once with both
halves disabled (the legacy interpreted pass + generator DES), *in the
same process*, and asserts:

- the two runs' ``LoadResult``\\ s are numerically identical, including
  the per-packet latency list element for element;
- the fast engine is at least 5x faster.

A second family of cells gates the **batch lane**
(:mod:`repro.core.batchlane`): a columnar 1M-packet / 100k-flow churn
workload through a bounded 8192-entry flow table, once down the lane
and once through the legacy per-packet oracle (``batch.packet_view()``
with ``batch_lane=False``), asserting exact result equality and a
>= 10x per-packet speedup; plus a 10M-packet / 1M-flow scale cell that
must finish in bounded wallclock and bounded peak RSS (the memory gate
for the deferred-flush design).  The batch cells need numpy — the
pure-Python lane fallback is correct but not fast — and are skipped
without it.

The measured numbers land in ``BENCH_wallclock.json``;
``benchmarks/check_wallclock_regression.py`` compares a fresh run
against the committed baseline in CI, normalising machine speed by the
legacy run so the gate tracks the *ratio*, not absolute seconds.
"""

from __future__ import annotations

import resource
import time

from benchmarks.harness import make_platform, save_result, uniform_flow_packets
from repro import vector as vec
from repro.core.framework import SpeedyBox
from repro.core.actions import Modify
from repro.nf import IPFilter, SyntheticNF
from repro.platform import PlatformConfig
from repro.traffic.columnar import uniform_batch
from repro.traffic.generator import clone_packets

PACKETS = 100_000
REPEATS = 3
MIN_SPEEDUP = 5.0

LEGACY = dict(compiled_flows=False, analytic_replay=False)

CASES = {
    "bess_n9": ("bess", 9),
    "onvm_n5": ("onvm", 5),
}

#: batch-lane churn cell: 100k flows x 10 packets through an 8192-entry
#: flow table, 4096 flows concurrently live (the ``block``) — ~91k
#: evictions, so the cell times admission churn and steady serving both
BATCH_FLOWS = 100_000
BATCH_PPF = 10
BATCH_CAP = 8_192
BATCH_BLOCK = 4_096
#: the batch lane must beat the per-packet compiled path by this factor
#: on the churn cell (acceptance gate; measured ~10.7x on the dev box)
MIN_BATCH_SPEEDUP = 10.0
#: scale cell: same shape, 10x the flows — 10M packets total
BATCH_10M_FLOWS = 1_000_000
#: peak-RSS ceiling for the 10M cell; columnar storage is ~50 bytes per
#: packet, so 10M packets plus runtime tables must stay well under this
BATCH_10M_MAX_RSS_MB = 4_096.0


def build_chain(n):
    return [IPFilter(f"ipfilter{i}") for i in range(n)]


def build_batch_chain():
    """Header-rewrite chain with no state functions (steady-compilable)."""
    return [
        SyntheticNF("fw", action=Modify.ttl_dec(), sf_payload_class=None),
        SyntheticNF("nat", action=Modify.set(dst_port=8080), sf_payload_class=None),
        SyntheticNF("mon", sf_payload_class=None),
    ]


def make_batch(flows):
    return uniform_batch(
        flows, BATCH_PPF, interleave="round_robin", block=BATCH_BLOCK
    )


def timed_batch_run(batch, batch_lane):
    runtime = SpeedyBox(
        build_batch_chain(), max_tracked_flows=BATCH_CAP, max_flows=BATCH_CAP
    )
    platform = make_platform(
        "bess", runtime, config=PlatformConfig(batch_lane=batch_lane)
    )
    load = batch if batch_lane else batch.packet_view()
    started = time.perf_counter()
    result = platform.run_load(load)
    return time.perf_counter() - started, result, runtime


def timed_run(platform_name, length, packets, legacy):
    config = PlatformConfig(**LEGACY) if legacy else None
    kwargs = {"config": config} if config is not None else {}
    platform = make_platform(platform_name, SpeedyBox(build_chain(length)), **kwargs)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    return time.perf_counter() - started, result


def identical(a, b):
    return (
        a.offered == b.offered
        and a.delivered == b.delivered
        and a.dropped == b.dropped
        and a.makespan_ns == b.makespan_ns
        and a.latencies_ns == b.latencies_ns
    )


def run_wallclock():
    packets = uniform_flow_packets(packets=PACKETS)
    results = {}
    for case, (platform_name, length) in CASES.items():
        fast_s = min(
            timed_run(platform_name, length, packets, legacy=False)[0]
            for __ in range(REPEATS)
        )
        # One timed legacy pass is ~10-20x the fast pass; keep its result
        # for the equality check and best-of over the remaining repeats.
        legacy_times = []
        legacy_result = None
        for __ in range(REPEATS):
            seconds, legacy_result = timed_run(platform_name, length, packets, legacy=True)
            legacy_times.append(seconds)
        legacy_s = min(legacy_times)
        __, fast_result = timed_run(platform_name, length, packets, legacy=False)
        results[case] = {
            "fast_s": fast_s,
            "legacy_s": legacy_s,
            "speedup": legacy_s / fast_s,
            "fast_s_per_100k": fast_s * (100_000 / PACKETS),
            "legacy_s_per_100k": legacy_s * (100_000 / PACKETS),
            "identical": identical(fast_result, legacy_result),
        }
    if vec.HAVE_NUMPY:
        results.update(run_batch_cells())
    return results


def run_batch_cells():
    """The batch-lane churn cell and the 10M-packet scale cell.

    The churn cell runs both legs on the same 1M-packet batch — the lane
    and the per-packet oracle — asserting exact result and runtime-stats
    equality (the in-CI equivalence gate) and recording the per-packet
    speedup.  The scale cell runs the lane leg only (the legacy leg
    would take ~5 minutes); its speedup is per-packet-normalised against
    the churn cell's legacy leg, which is the same code, chain and table
    shape on the same machine.
    """
    results = {}
    batch_1m = make_batch(BATCH_FLOWS)
    n_1m = len(batch_1m)
    fast_s = min(timed_batch_run(batch_1m, batch_lane=True)[0] for __ in range(2))
    legacy_s, legacy_result, legacy_runtime = timed_batch_run(batch_1m, batch_lane=False)
    __, fast_result, fast_runtime = timed_batch_run(batch_1m, batch_lane=True)
    results["bess_batch_1m"] = {
        "fast_s": fast_s,
        "legacy_s": legacy_s,
        "speedup": legacy_s / fast_s,
        "fast_s_per_100k": fast_s * (100_000 / n_1m),
        "legacy_s_per_100k": legacy_s * (100_000 / n_1m),
        "identical": identical(fast_result, legacy_result)
        and fast_runtime.stats() == legacy_runtime.stats(),
    }
    del batch_1m, legacy_result, fast_result

    batch_10m = make_batch(BATCH_10M_FLOWS)
    n_10m = len(batch_10m)
    scale_s = timed_batch_run(batch_10m, batch_lane=True)[0]
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    results["bess_batch_10m"] = {
        "wallclock_s": scale_s,
        "s_per_100k": scale_s * (100_000 / n_10m),
        "peak_rss_mb": peak_rss_mb,
        # per-packet-normalised against the churn cell's legacy leg
        "speedup_vs_1m_legacy": (legacy_s / n_1m) / (scale_s / n_10m),
    }
    return results


def _report(results):
    lines = []
    for case, entry in results.items():
        if "fast_s" in entry:
            lines.append(
                f"{case}: fast={entry['fast_s']:.3f}s legacy={entry['legacy_s']:.3f}s "
                f"speedup={entry['speedup']:.2f}x identical={entry['identical']}"
            )
        else:
            lines.append(
                f"{case}: wallclock={entry['wallclock_s']:.1f}s "
                f"rss={entry['peak_rss_mb']:.0f}MB "
                f"speedup={entry['speedup_vs_1m_legacy']:.2f}x (vs 1m legacy)"
            )
    metrics = {
        f"{case}_{key}": float(value)
        for case, entry in results.items()
        for key, value in entry.items()
    }
    save_result(
        "wallclock",
        "Fast engine vs legacy (interpreted + DES), best of "
        f"{REPEATS}, {PACKETS} packets:\n" + "\n".join(lines),
        metrics=metrics,
    )


def test_wallclock(benchmark):
    results = benchmark.pedantic(run_wallclock, rounds=1, iterations=1)
    _report(results)
    for case, entry in results.items():
        if "identical" in entry:
            assert entry["identical"], f"{case}: fast and legacy results diverged"
    assert results["bess_n9"]["speedup"] >= MIN_SPEEDUP, (
        f"fast engine only {results['bess_n9']['speedup']:.2f}x on bess_n9 "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert results["onvm_n5"]["speedup"] >= 2.0
    if vec.HAVE_NUMPY:
        batch = results["bess_batch_1m"]
        assert batch["speedup"] >= MIN_BATCH_SPEEDUP, (
            f"batch lane only {batch['speedup']:.2f}x on bess_batch_1m "
            f"(need >= {MIN_BATCH_SPEEDUP}x)"
        )
        scale = results["bess_batch_10m"]
        assert scale["speedup_vs_1m_legacy"] >= MIN_BATCH_SPEEDUP, (
            f"batch lane only {scale['speedup_vs_1m_legacy']:.2f}x on the "
            f"10M-packet cell (need >= {MIN_BATCH_SPEEDUP}x)"
        )
        assert scale["peak_rss_mb"] <= BATCH_10M_MAX_RSS_MB, (
            f"10M-packet cell peaked at {scale['peak_rss_mb']:.0f}MB RSS "
            f"(bound {BATCH_10M_MAX_RSS_MB:.0f}MB)"
        )
