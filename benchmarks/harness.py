"""Shared harness for the per-table/per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper's §VII:
it builds the paper's chain and workload, runs both the original chain
and SpeedyBox on both platform models, prints the same rows/series the
paper reports, and writes the rendered text to
``benchmarks/results/<experiment>.txt`` (the source for EXPERIMENTS.md).

The pytest-benchmark fixture times the simulation run itself, so
``pytest benchmarks/ --benchmark-only`` both regenerates the numbers and
tracks the harness's own performance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net.packet import Packet
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.platform.base import PacketOutcome, Platform
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

RESULTS_DIR = Path(__file__).parent / "results"
#: BENCH_<experiment>.json files land at the repo root so the perf
#: trajectory (throughput, latency percentiles, cycles/packet) is a
#: flat, diffable set of artifacts tracked across PRs.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Cycles charged for NIC RX+TX with default costs; the paper's
#: "CPU cycle per packet" tables count chain processing only.
NIC_CYCLES = 260.0


def save_result(name: str, text: str, metrics: Optional[Dict[str, float]] = None) -> None:
    """Print the rendered table/series and persist it under results/.

    When ``metrics`` is given, the machine-readable companion
    ``BENCH_<name>.json`` is written at the repo root as well.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    if metrics is not None:
        save_bench_json(name, metrics)


def save_bench_json(experiment: str, metrics: Dict[str, float]) -> Path:
    """Write BENCH_<experiment>.json at the repo root; returns the path."""
    path = REPO_ROOT / f"BENCH_{experiment}.json"
    payload = {"experiment": experiment, "metrics": metrics}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def make_platform(platform_name: str, runtime, **kwargs) -> Platform:
    if platform_name == "bess":
        return BessPlatform(runtime, **kwargs)
    if platform_name == "onvm":
        return OpenNetVMPlatform(runtime, **kwargs)
    raise ValueError(f"unknown platform {platform_name!r}")


def uniform_flow_packets(
    packets: int = 8,
    payload: bytes = b"x" * 26,  # 64B frames end to end
    sport: int = 1000,
    dport: int = 80,
) -> List[Packet]:
    """One plain TCP flow (no handshake): packet 0 is the initial packet."""
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, dport, packets=packets, payload=payload)
    return TrafficGenerator([spec]).packets()


def initial_and_subsequent(
    platform: Platform, packets: Sequence[Packet]
) -> Tuple[PacketOutcome, PacketOutcome]:
    """Process a flow; return (initial outcome, steady-state subsequent outcome)."""
    outcomes = platform.process_all(clone_packets(packets))
    return outcomes[0], outcomes[-1]


def chain_cycles(outcome: PacketOutcome) -> float:
    """Work cycles excluding NIC — the paper's 'CPU cycle per packet'."""
    return outcome.work_cycles - NIC_CYCLES


def chain_latency_cycles(outcome: PacketOutcome) -> float:
    return outcome.latency_cycles - NIC_CYCLES


def chain_main_core_cycles(outcome: PacketOutcome) -> float:
    """Main-core cycles excluding NIC — what the paper's per-packet CPU
    counters on the chain/manager core measure when SF waves are
    offloaded to worker cores."""
    return outcome.main_core_cycles - NIC_CYCLES


def measure_four_ways(
    chain_builder: Callable[[], list],
    packets: Sequence[Packet],
    platforms: Sequence[str] = ("bess", "onvm"),
    **platform_kwargs,
) -> Dict[str, Dict[str, PacketOutcome]]:
    """Run {platform} x {original, speedybox} and collect init/sub outcomes.

    Returns ``results[platform][variant]`` -> dict with 'init' and 'sub'.
    """
    results: Dict[str, Dict[str, Dict[str, PacketOutcome]]] = {}
    for platform_name in platforms:
        results[platform_name] = {}
        for variant, runtime_cls in (("original", ServiceChain), ("speedybox", SpeedyBox)):
            platform = make_platform(platform_name, runtime_cls(chain_builder()), **platform_kwargs)
            init, sub = initial_and_subsequent(platform, packets)
            results[platform_name][variant] = {"init": init, "sub": sub}
    return results


def saturation_rate_mpps(
    platform: Platform, packets: Sequence[Packet], warmup: int = 0
) -> float:
    """Back-to-back offered load; returns the sustained Mpps."""
    result = platform.run_load(clone_packets(packets))
    return result.throughput_mpps


def per_flow_processing_time_us(
    runtime_builder: Callable[[], Union[ServiceChain, SpeedyBox]],
    platform_name: str,
    packets: Sequence[Packet],
) -> List[float]:
    """Fig. 9 metric: per-flow aggregate processing time in microseconds.

    "We measure the flow processing time as the aggregated time spent
    processing all packets in a flow."
    """
    platform = make_platform(platform_name, runtime_builder())
    totals: Dict = {}
    order: List = []
    for packet in clone_packets(packets):
        flow = packet.five_tuple()  # pre-chain identity
        outcome = platform.process(packet)
        if flow not in totals:
            totals[flow] = 0.0
            order.append(flow)
        totals[flow] += outcome.latency_ns / 1000.0
    return [totals[flow] for flow in order]


def percent_reduction(before: float, after: float) -> float:
    return 100.0 * (1.0 - after / before)
