"""Ablation — multi-chain steering overhead and per-chain consolidation.

The director (an extension beyond the paper's single-chain prototype)
adds a steering lookup in front of every packet.  This ablation measures
(a) that overhead stays constant as the number of deployed chains grows,
and (b) that per-chain fast-path rates are unaffected by co-deployment —
consolidation state never bleeds between chains.
"""

import time

from benchmarks.harness import save_result
from repro.core.director import ServiceDirector, SteeringRule
from repro.nf import IPFilter, Monitor
from repro.nf.ipfilter import AclRule
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator


def build_director(chain_count):
    chains = {
        f"chain{i}": [Monitor(f"mon{i}"), IPFilter(f"fw{i}")] for i in range(chain_count)
    }
    rules = [
        SteeringRule(AclRule.make(dst_ports=(8000 + i, 8000 + i)), f"chain{i}")
        for i in range(chain_count)
    ]
    return ServiceDirector(chains, rules, default_chain="chain0")


def traffic(chain_count, flows_per_chain=4, packets=8):
    specs = []
    for chain_index in range(chain_count):
        for flow_index in range(flows_per_chain):
            specs.append(
                FlowSpec.tcp(
                    f"10.{chain_index}.{flow_index}.1",
                    "20.0.0.1",
                    1000 + flow_index,
                    8000 + chain_index,
                    packets=packets,
                    payload=b"x",
                )
            )
    return TrafficGenerator(specs, interleave="round_robin").packets()


def run_one(chain_count):
    director = build_director(chain_count)
    packets = traffic(chain_count)
    started = time.perf_counter()
    for packet in packets:
        director.process(packet)
    elapsed = time.perf_counter() - started
    stats = director.stats()
    fast_rates = [stats[name]["fast_path_rate"] for name in stats]
    return {
        "wall_us_per_pkt": 1e6 * elapsed / len(packets),
        "min_fast_rate": min(fast_rates),
        "max_fast_rate": max(fast_rates),
        "total_rules": sum(stats[name]["active_rules"] for name in stats),
    }


def run_ablation():
    return {count: run_one(count) for count in (1, 2, 4, 8)}


def _report(results):
    rows = [
        [
            count,
            f"{d['wall_us_per_pkt']:.1f}",
            f"{100 * d['min_fast_rate']:.1f}%",
            f"{100 * d['max_fast_rate']:.1f}%",
            int(d["total_rules"]),
        ]
        for count, d in sorted(results.items())
    ]
    save_result(
        "ablation_multi_chain",
        format_table(
            ["chains", "harness us/pkt", "min fast rate", "max fast rate", "rules"],
            rows,
            title="Ablation: co-deployed chains behind one director",
        ),
    )


def _assert_shape(results):
    for count, data in results.items():
        # Per-chain fast-path behaviour is identical regardless of how
        # many chains are co-deployed: 7/8 packets fast per flow.
        assert data["min_fast_rate"] == data["max_fast_rate"]
        assert abs(data["min_fast_rate"] - 7 / 8) < 1e-9
        # Each chain holds exactly its own flows' rules.
        assert data["total_rules"] == count * 4


def test_ablation_multi_chain(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=2, iterations=1)
    _report(results)
    _assert_shape(results)
