"""Microbenchmark — per-NF consolidation profile.

The paper's footnote points to an external repository with
microbenchmark results for the remaining NFs beyond IPFilter; this bench
fills that gap in-tree: for every NF family we measure the original
per-packet cost, the SpeedyBox fast-path cost of a single-NF chain, and
which optimisation (header consolidation vs recorded state function) the
NF exercises.

Single-NF chains are the worst case for SpeedyBox — the framework
overhead is amortised over exactly one NF — so several rows legitimately
show a *loss* (Fig. 4's one-header-action observation, generalised).
"""

from benchmarks.harness import chain_cycles, save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    MaglevLoadBalancer,
    MazuNAT,
    Monitor,
    SnortIDS,
    VniMap,
    VpnEncap,
    VxlanGateway,
)
from repro.platform import BessPlatform
from repro.stats import format_table
from repro.traffic.generator import clone_packets

RULES_TEXT = 'alert tcp any any -> any any (msg:"m"; content:"needle"; sid:1;)'

NF_FACTORIES = {
    "IPFilter": lambda: IPFilter("nf"),
    "Monitor": lambda: Monitor("nf"),
    "MazuNAT": lambda: MazuNAT("nf"),
    "Maglev": lambda: MaglevLoadBalancer("nf", table_size=131),
    "Snort": lambda: SnortIDS("nf", RULES_TEXT),
    "DoS": lambda: DosPrevention("nf", threshold=1000, mode="packets"),
    "VPN encap": lambda: VpnEncap("nf"),
    "VXLAN gw": lambda: VxlanGateway("nf", VniMap([("0.0.0.0/0", 7)])),
}


def run_micro():
    packets = uniform_flow_packets(packets=6)
    results = {}
    for label, factory in NF_FACTORIES.items():
        original = BessPlatform(ServiceChain([factory()]))
        speedybox = BessPlatform(SpeedyBox([factory()]))
        orig_sub = original.process_all(clone_packets(packets))[-1]
        sbox_sub = speedybox.process_all(clone_packets(packets))[-1]
        rule = speedybox.runtime.global_mat.peek(
            speedybox.runtime.global_mat.flows()[0]
        )
        results[label] = {
            "orig": chain_cycles(orig_sub),
            "sbox": chain_cycles(sbox_sub),
            "has_modify": bool(rule.consolidated.field_ops),
            "has_encap": bool(rule.consolidated.net_encaps),
            "sf_count": rule.schedule.batch_count,
        }
    return results


def _report(results):
    rows = []
    for label, data in results.items():
        delta = 100.0 * (data["sbox"] / data["orig"] - 1.0)
        kind = []
        if data["has_modify"]:
            kind.append("modify")
        if data["has_encap"]:
            kind.append("encap")
        if data["sf_count"]:
            kind.append(f"{data['sf_count']} SF")
        rows.append(
            [label, f"{data['orig']:.0f}", f"{data['sbox']:.0f}", f"{delta:+.1f}%", "+".join(kind) or "forward"]
        )
    save_result(
        "micro_per_nf",
        format_table(
            ["NF", "orig cycles", "fast-path cycles", "delta", "consolidated as"],
            rows,
            title="Microbenchmark: single-NF chains, subsequent packets (worst case)",
        ),
    )


def _assert_shape(results):
    # Every NF family consolidates into something sensible.
    assert results["MazuNAT"]["has_modify"]
    assert results["Maglev"]["has_modify"]
    assert results["VPN encap"]["has_encap"]
    assert results["VXLAN gw"]["has_encap"]
    assert results["Snort"]["sf_count"] == 1
    assert results["Monitor"]["sf_count"] == 1
    # Stateless forwarders on single-NF chains lose (framework overhead
    # exceeds one NF's savings) — the generalised Fig. 4 point.
    assert results["IPFilter"]["sbox"] > results["IPFilter"]["orig"]
    # For every NF, the fast path stays within 2x of the original even in
    # this worst case: the overhead is bounded.
    for label, data in results.items():
        assert data["sbox"] < 2.0 * data["orig"], label


def test_micro_per_nf(benchmark):
    results = benchmark.pedantic(run_micro, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
