"""Table II — NFs implemented for evaluation and the LOC added to
integrate them into SpeedyBox.

Paper values (C/C++ sources):

    NF        core LOC   added LOC
    Snort        1129    27 (+2.4%)
    Maglev        141    23 (+16.3%)
    IPFilter      110    20 (+18.2%)
    Monitor       223    19 (+8.5%)
    MazuNAT       358    20 (+5.6%)

Our NFs are Python, so absolute LOC differ; the claim that reproduces is
the *shape*: integration is a handful of instrumentation-API lines, a
single-digit-to-low-double-digit percentage of each NF.
"""

from benchmarks.harness import save_result
from repro.stats import format_table, integration_table


def run_table2():
    return integration_table()


def test_table2_integration_loc(benchmark):
    reports = benchmark.pedantic(run_table2, rounds=3, iterations=1)

    rows = [report.as_row() for report in reports]
    text = format_table(
        ["Network Function", "LOC for Core Functionalities", "Added LOC"],
        rows,
        title="Table II: additional LOC to integrate NFs into SpeedyBox",
    )
    save_result("table2_integration_loc", text)

    by_name = {report.name: report for report in reports}
    assert set(by_name) == {"Snort", "Maglev", "IPFilter", "Monitor", "MazuNAT"}
    for report in reports:
        # Shape claims: integration is small in absolute terms (tens of
        # lines at most) and a modest fraction of the NF.
        assert 1 <= report.added_loc <= 30
        assert report.overhead_percent <= 25.0
    # Snort is the biggest NF and has the lowest relative overhead, as
    # in the paper (1129 core lines, +2.4%).
    assert by_name["Snort"].core_loc == max(r.core_loc for r in reports)
    assert by_name["Snort"].overhead_percent == min(r.overhead_percent for r in reports)
