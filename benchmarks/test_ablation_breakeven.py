"""Ablation — the break-even flow size.

Consolidation is an investment: the initial packet pays recording and
consolidation on top of the chain walk, and only subsequent packets
collect the dividend.  This ablation sweeps flow size (packets per flow)
and reports the per-flow total cost ratio — answering a question the
paper leaves implicit: *how long must a flow live for SpeedyBox to pay
off?*  (Relevant because datacenter traces are full of 1-3-packet mice.)
"""

from benchmarks.harness import make_platform, save_result
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

FLOW_SIZES = [1, 2, 3, 4, 6, 10, 20, 50]
CHAIN_LENGTH = 4


def build_chain():
    return [IPFilter(f"fw{i}", mark_dscp=10 + i) for i in range(CHAIN_LENGTH)]


def flow_total_cycles(runtime_cls, size):
    platform = make_platform("bess", runtime_cls(build_chain()))
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=size, payload=b"x" * 26)
    packets = TrafficGenerator([spec]).packets()
    outcomes = platform.process_all(clone_packets(packets))
    return sum(outcome.work_cycles for outcome in outcomes)


def run_ablation():
    results = {}
    for size in FLOW_SIZES:
        original = flow_total_cycles(ServiceChain, size)
        speedybox = flow_total_cycles(SpeedyBox, size)
        results[size] = {
            "orig": original,
            "sbox": speedybox,
            "ratio": speedybox / original,
        }
    return results


def _report(results):
    rows = [
        [size, f"{d['orig']:.0f}", f"{d['sbox']:.0f}", f"{d['ratio']:.3f}"]
        for size, d in sorted(results.items())
    ]
    breakeven = next(
        (size for size, d in sorted(results.items()) if d["ratio"] < 1.0), None
    )
    save_result(
        "ablation_breakeven",
        format_table(
            ["packets/flow", "orig cycles", "sbox cycles", "sbox/orig"],
            rows,
            title=(
                f"Ablation: break-even flow size on a {CHAIN_LENGTH}-NF chain "
                f"(first win at {breakeven} packets)"
            ),
        ),
    )


def _assert_shape(results):
    ratios = [results[size]["ratio"] for size in FLOW_SIZES]
    # Monotone: every extra packet amortises the investment further.
    assert ratios == sorted(ratios, reverse=True)
    # Single-packet flows are a clear loss (recording + consolidation
    # with zero dividend)...
    assert results[1]["ratio"] > 1.1
    # ...but the crossover comes within a handful of packets on a 4-NF
    # chain, and long flows converge toward the steady-state fast-path
    # ratio.
    assert results[4]["ratio"] < 1.0
    assert results[50]["ratio"] < 0.55


def test_ablation_breakeven(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
