"""Tail-latency forensics benchmark — attribution across regime shifts.

Three deterministic phases feed one :class:`ForensicsEngine` and one
audit log, so the recorded metrics exercise the whole forensics
pipeline end to end:

1. ``steady``   — paced many-flow traffic through a consolidated
   firewall|DPI|firewall chain with a light synthetic inspection
   workload; its windows establish the regime-shift detector's
   baseline.  (Arrivals are paced above the service time on purpose:
   a saturated source grows the queue without bound and every shift
   would name ``queue`` — pacing isolates the component under test.)
2. ``surge``    — the same traffic with the DPI state function's
   per-packet work inflated 10x; the service-time jump must fire a
   ``latency_regime_shift`` audit event naming ``service`` as the
   moved component.
3. ``failover`` — a replica cluster loses 1 of 3 replicas mid-run and
   recovers; the charged stall deliveries must land in the engine as
   stall records, and the stall regime shift must precede
   ``ft_failover_complete`` in audit order.

Every gated metric is simulated (packet counts, component shares from
the deterministic replay, simulated p99s), so the committed
``BENCH_forensics.json`` diffs cleanly across machines in the bench
regression gate; the only wall-clock-derived numbers (``elapsed_s``
and the failover stall magnitudes, which are charged from real
recovery time) carry diff-ignored key names.
"""

from __future__ import annotations

import time

from benchmarks.harness import make_platform, save_result
from repro.core.framework import SpeedyBox
from repro.ft import FaultInjector, FaultTolerance
from repro.nf import IPFilter, MazuNAT, Monitor, SyntheticNF
from repro.obs import AuditLog, ForensicsEngine
from repro.obs.forensics import components_sum
from repro.scale import ScaleCluster
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

FLOWS = 32
PACKETS_PER_FLOW = 64
STEADY_CYCLES = 800.0
SURGE_CYCLES = 8000.0
#: inter-arrival pacing, above even the surge chain's service time
GAP_NS = 8000
WINDOW_PACKETS = 512
SAMPLE_EVERY = 4
WORST_K = 8
FT_REPLICAS = 3
FT_KILL_AT = 150


def chain(sf_work_cycles):
    return [
        IPFilter("fw0"),
        SyntheticNF("dpi", sf_work_cycles=sf_work_cycles),
        IPFilter("fw1"),
    ]


def ft_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.77", port_range=(20000, 60000)),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def workload():
    specs = [
        FlowSpec.tcp(
            f"10.9.{index // 250}.{index % 250 + 1}",
            "20.0.0.9",
            3000 + index,
            80,
            packets=PACKETS_PER_FLOW,
            payload=b"x" * 26,
        )
        for index in range(FLOWS)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


def ft_workload(flows=48, packets_per_flow=10):
    specs = [
        FlowSpec.tcp(
            f"10.8.{i // 200}.{i % 200 + 1}",
            f"99.5.0.{i % 20 + 1}",
            7100 + i,
            80,
            packets=packets_per_flow,
            handshake=True,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=13).packets()


def run_phases():
    audit = AuditLog()
    engine = ForensicsEngine(
        worst_k=WORST_K,
        window_packets=WINDOW_PACKETS,
        sample_every=SAMPLE_EVERY,
        audit=audit,
    )
    packets = workload()

    started = time.perf_counter()
    steady = make_platform("bess", SpeedyBox(chain(STEADY_CYCLES)), forensics=engine)
    steady_result = steady.run_load(clone_packets(packets), inter_arrival_ns=GAP_NS)
    steady_windows = list(engine.windows)

    surge = make_platform("bess", SpeedyBox(chain(SURGE_CYCLES)), forensics=engine)
    surge_result = surge.run_load(clone_packets(packets), inter_arrival_ns=GAP_NS)
    surge_windows = engine.windows[len(steady_windows):]
    elapsed = time.perf_counter() - started
    # Component attribution snapshot before the failover phase pollutes
    # the totals with wall-clock-derived stall charge.
    attribution = dict(engine.summary()["components"])
    surge_shifts = list(engine.detector.shifts)

    cluster = ScaleCluster(
        ft_chain,
        replicas=FT_REPLICAS,
        audit=audit,
        forensics=engine,
    )
    ft = FaultTolerance(
        cluster,
        checkpoint_interval=16,
        injector=FaultInjector(kill_at=FT_KILL_AT),
        audit=audit,
        forensics=engine,
    )
    ft_packets = ft_workload()
    cluster.run_load(clone_packets(ft_packets))
    if ft.dead:
        ft.recover_all()

    return {
        "audit": audit,
        "engine": engine,
        "ft": ft,
        "elapsed": elapsed,
        "offered": len(packets),
        "steady_delivered": steady_result.delivered,
        "surge_delivered": surge_result.delivered,
        "steady_windows": steady_windows,
        "surge_windows": surge_windows,
        "surge_shifts": surge_shifts,
        "attribution": attribution,
        "ft_offered": len(ft_packets),
    }


def test_forensics_attribution(benchmark):
    ctx = benchmark.pedantic(run_phases, rounds=1, iterations=1)
    engine = ctx["engine"]
    audit = ctx["audit"]

    assert ctx["steady_delivered"] == ctx["offered"]
    assert ctx["surge_delivered"] == ctx["offered"]

    # Every worst-K record decomposes exactly — same invariant the
    # property suite proves per lane, re-checked on the shipped artifact.
    worst = engine.recorder.worst_overall()
    assert worst, "flight recorder is empty"
    for record in worst:
        assert components_sum(
            record.queue_ns, record.service_ns, record.transfer_ns, record.stall_ns
        ) == record.latency_ns

    # The surge fired a service-attributed regime shift...
    service_shifts = [
        s for s in ctx["surge_shifts"] if s["component"] == "service"
    ]
    assert service_shifts, "surge did not fire a service regime shift"
    # ...and the failover's stall shift landed before ft_failover_complete.
    stall_events = [
        e for e in audit.events("latency_regime_shift")
        if e["component"] == "stall"
    ]
    complete = audit.events("ft_failover_complete")
    assert stall_events and complete
    assert min(e["seq"] for e in stall_events) < complete[0]["seq"]
    assert engine.stall_records, "no charged stall deliveries reached the engine"

    steady_p99 = max(w["p99_ns"] for w in ctx["steady_windows"])
    surge_p99 = max(w["p99_ns"] for w in ctx["surge_windows"])
    summary = engine.summary()
    attribution = ctx["attribution"]
    share_total = sum(attribution.values())

    metrics = {
        "packets": summary["packets"],
        "sampled": summary["sampled"],
        "windows": summary["windows"],
        "worst_records": len(worst),
        "steady_p99_us": round(steady_p99 / 1000.0, 3),
        "surge_p99_us": round(surge_p99 / 1000.0, 3),
        "service_shifts": len(service_shifts),
        "stall_shifts": len(stall_events),
        "regime_shifts_total": summary["regime_shifts"],
        "stall_records": summary["stall_records"],
        "ft_buffered": ctx["ft"].packets_buffered,
        "stall_charged_wallclock_ms": round(
            sum(c.stall_ns for c in engine.stall_records) / 1e6, 3
        ),
        "elapsed_s": round(ctx["elapsed"], 4),
    }
    for name in ("queue", "service", "transfer", "stall"):
        share = attribution[name] / share_total if share_total else 0.0
        metrics[f"{name}_share_pct"] = round(100.0 * share, 2)

    rows = [
        ["steady", f"{STEADY_CYCLES:.0f}", len(ctx["steady_windows"]),
         f"{steady_p99 / 1000.0:.2f}", "-"],
        ["surge", f"{SURGE_CYCLES:.0f}", len(ctx["surge_windows"]),
         f"{surge_p99 / 1000.0:.2f}",
         f"service x{len(service_shifts)}"],
        ["failover", "-", "-", "-",
         f"stall x{len(stall_events)} "
         f"({metrics['stall_records']} charged deliveries)"],
    ]
    text = format_table(
        ["phase", "dpi cycles", "windows", "p99 us", "regime shifts"],
        rows,
        title=(
            f"tail-latency forensics — {summary['sampled']} sampled of "
            f"{summary['packets']} packets, 1-in-{SAMPLE_EVERY} stride, "
            f"worst-{WORST_K} ring"
        ),
    )
    save_result("forensics", text, metrics=metrics)

    assert summary["sampled"] > 0
    assert surge_p99 > 2.0 * steady_p99
