"""Figure 4 — effect of header action consolidation.

Paper setup: chains of 1-3 IPFilter NFs, 64B packets; plots CPU cycles
per packet for initial and subsequent packets, with and without
SpeedyBox, on BESS (4a) and OpenNetVM (4b).

Paper anchors: for subsequent packets, SpeedyBox costs slightly *more*
than the original at 1 header action (Local-MAT machinery overhead), and
reduces CPU cycles by 40.9% / 57.7% at 2 / 3 header actions (BESS),
approaching the theoretical (N-1)/N.
"""

from benchmarks.harness import (
    chain_cycles,
    measure_four_ways,
    percent_reduction,
    save_result,
    uniform_flow_packets,
)
from repro.nf import IPFilter
from repro.stats import format_table


def acl_rules():
    # A realistic blacklist the test flow never matches: initial packets
    # pay the full linear scan ("linear matching of ACL lists for new
    # flows"), subsequent packets hit the verdict cache.
    from repro.nf.ipfilter import AclRule, Verdict

    return [
        AclRule.make(src=f"192.168.{i % 256}.0/24", dst_ports=(1, 1023), verdict=Verdict.DROP)
        for i in range(300)
    ]


def build_chain(n):
    # Each IPFilter contributes one header action; DSCP marking gives the
    # action a real field write as in a policing firewall.
    return lambda: [
        IPFilter(f"ipfilter{i}", rules=acl_rules(), mark_dscp=10 + i) for i in range(n)
    ]


def run_fig4():
    packets = uniform_flow_packets(packets=8)
    return {n: measure_four_ways(build_chain(n), packets) for n in (1, 2, 3)}


def _report(rows):
    for platform in ("bess", "onvm"):
        table_rows = []
        metrics = {}
        for n in (1, 2, 3):
            result = rows[n][platform]
            table_rows.append(
                [
                    n,
                    chain_cycles(result["original"]["init"]),
                    chain_cycles(result["speedybox"]["init"]),
                    chain_cycles(result["original"]["sub"]),
                    chain_cycles(result["speedybox"]["sub"]),
                ]
            )
            for variant in ("original", "speedybox"):
                for phase in ("init", "sub"):
                    metrics[f"{variant}_{phase}_cycles_per_packet_n{n}"] = chain_cycles(
                        result[variant][phase]
                    )
        text = format_table(
            ["# Header Action", "Original-init", "SpeedyBox-init", "Original-sub", "SpeedyBox-sub"],
            table_rows,
            title=f"Figure 4 ({platform.upper()}): CPU cycles per packet vs header actions",
        )
        save_result(f"fig4_{platform}", text, metrics=metrics)


def _assert_shape(rows):
    for platform in ("bess", "onvm"):
        orig_sub = {n: chain_cycles(rows[n][platform]["original"]["sub"]) for n in (1, 2, 3)}
        sbox_sub = {n: chain_cycles(rows[n][platform]["speedybox"]["sub"]) for n in (1, 2, 3)}
        orig_init = {n: chain_cycles(rows[n][platform]["original"]["init"]) for n in (1, 2, 3)}
        sbox_init = {n: chain_cycles(rows[n][platform]["speedybox"]["init"]) for n in (1, 2, 3)}

        # Initial packets cost more than subsequent (flow setup work),
        # and SpeedyBox's initial packet is the most expensive of all:
        # it also records into Local MATs and consolidates.
        for n in (1, 2, 3):
            assert orig_init[n] > orig_sub[n]
            assert sbox_init[n] > sbox_sub[n]
            assert sbox_init[n] > orig_init[n]

        # At 1 header action SpeedyBox *loses* on subsequent packets.
        assert sbox_sub[1] > orig_sub[1]

        # At 2 and 3 header actions consolidation wins, approaching (N-1)/N.
        reduction2 = percent_reduction(orig_sub[2], sbox_sub[2])
        reduction3 = percent_reduction(orig_sub[3], sbox_sub[3])
        assert 30.0 <= reduction2 <= 55.0, f"{platform}: {reduction2:.1f}% (paper: 40.9%)"
        assert 50.0 <= reduction3 <= 70.0, f"{platform}: {reduction3:.1f}% (paper: 57.7%)"
        assert reduction3 > reduction2

        # SpeedyBox subsequent cost is (nearly) flat in chain length: the
        # extra merged fields cost far less than extra NF hops.
        assert sbox_sub[3] - sbox_sub[1] < 0.25 * (orig_sub[3] - orig_sub[1])


def test_fig4_header_action_consolidation(benchmark):
    rows = benchmark.pedantic(run_fig4, rounds=3, iterations=1)
    _report(rows)
    _assert_shape(rows)
