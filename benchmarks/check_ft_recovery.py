"""CI gate: failover recovery must stay loss-free and log-bounded.

Usage::

    python benchmarks/check_ft_recovery.py BENCH_ft_recovery.json \
        [--budget-ms 500]

``benchmarks/test_ft_recovery.py`` kills 1 of 4 replicas mid-run under
churn and recovers, once per checkpoint interval, with the equivalence
oracle watching.  This gate re-asserts the recorded guarantees:

- every interval's run was equivalent (loss-free, duplicate-free,
  state-identical — zero divergences);
- buffered in-flight packets were all delivered;
- the replayed-log depth respects the checkpoint bound: the per-replica
  log is trimmed at every checkpoint, so replay work cannot exceed
  (checkpoint interval + in-flight buffer), the knob the sweep turns;
- recovery time stays under a generous wall-clock budget (default
  500 ms — simulation-scale recoveries run in single-digit ms, the
  budget only catches pathological blowups);
- recovery cost was charged onto the packets that paid it: under the
  default ``charge_recovery`` policy every buffered delivery carries
  the failover stall on its simulated latency, so ``charged_packets``
  must equal ``delivered`` and the charged stall must be non-zero
  whenever anything was buffered.

Exit code 1 on any failure.
"""

from __future__ import annotations

import argparse
import json

INTERVALS = (8, 16, 32)
PER_INTERVAL = (
    "recovery_ms",
    "buffered",
    "delivered",
    "replayed",
    "restored",
    "rebuilt",
    "equivalent",
    "divergences",
    "charged_packets",
    "stall_charged_ms",
)


def load_metrics(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    return payload["metrics"]


def check(metrics: dict, budget_ms: float) -> int:
    failures = 0
    required = [
        f"interval_{interval}_{key}"
        for interval in INTERVALS
        for key in PER_INTERVAL
    ]
    missing = [key for key in required if key not in metrics]
    if missing:
        print(f"FAIL missing metrics: {', '.join(missing)}")
        return 1

    for interval in INTERVALS:
        prefix = f"interval_{interval}"
        equivalent = metrics[f"{prefix}_equivalent"]
        divergences = metrics[f"{prefix}_divergences"]
        buffered = metrics[f"{prefix}_buffered"]
        delivered = metrics[f"{prefix}_delivered"]
        replayed = metrics[f"{prefix}_replayed"]
        recovery_ms = metrics[f"{prefix}_recovery_ms"]
        charged = metrics[f"{prefix}_charged_packets"]
        stall_ms = metrics[f"{prefix}_stall_charged_ms"]

        checks = [
            (equivalent == 1 and divergences == 0,
             f"equivalent (divergences={divergences})"),
            (buffered == delivered,
             f"buffered {buffered} == delivered {delivered}"),
            (replayed <= interval + buffered,
             f"replayed {replayed} <= interval {interval} + buffered {buffered}"),
            (recovery_ms <= budget_ms,
             f"recovery {recovery_ms:.2f} ms <= budget {budget_ms:.0f} ms"),
            (charged == delivered,
             f"charged {charged} == delivered {delivered} (stall on packets)"),
            (stall_ms > 0 if delivered > 0 else stall_ms == 0,
             f"stall charged {stall_ms:.2f} ms onto buffered deliveries"),
        ]
        for ok, description in checks:
            status = "ok" if ok else "FAIL"
            print(f"{status:4s} interval {interval:3d}: {description}")
            failures += 0 if ok else 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="path to BENCH_ft_recovery.json")
    parser.add_argument(
        "--budget-ms",
        type=float,
        default=500.0,
        help="max acceptable recovery wall-clock per failover (ms)",
    )
    args = parser.parse_args()
    return check(load_metrics(args.bench_json), args.budget_ms)


if __name__ == "__main__":
    raise SystemExit(main())
