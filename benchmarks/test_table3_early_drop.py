"""Table III — early packet drop saves CPU cycles.

Paper setup: a chain of three IPFilters with actions
{forward, forward, drop}: the original chain carries every packet to NF3
before dropping it; SpeedyBox drops subsequent packets at the chain
entry.

Paper values:

    (CPU cycle)      NF1   NF2   NF3   Aggregate
    BESS             530   582   577   1689
    BESS w/ SBox      -     -     -     591 (-65.0%)
    ONVM             510   570   540   1620
    ONVM w/ SBox      -     -     -     570 (-64.8%)
"""

from benchmarks.harness import (
    chain_cycles,
    make_platform,
    percent_reduction,
    save_result,
    uniform_flow_packets,
)
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.nf.ipfilter import AclRule, Verdict
from repro.stats import format_table
from repro.traffic.generator import clone_packets


def build_chain():
    # NF1/NF2 forward; NF3 drops everything.  Slightly different ACL
    # sizes give the NFs the paper's slightly different per-NF costs.
    return [
        IPFilter("nf1", rules=[AclRule.make(src="192.0.2.0/24", verdict=Verdict.DROP)]),
        IPFilter("nf2", rules=[AclRule.make(src=f"198.51.{i}.0/24", verdict=Verdict.DROP) for i in range(4)]),
        IPFilter("nf3", rules=[AclRule.make(verdict=Verdict.DROP)]),
    ]


def build_monitored_chain():
    """The early-drop chain with a Monitor in front of the firewall:
    SpeedyBox must keep counting dropped-flow packets (pre-drop state
    fidelity), which claws back part of the drop savings."""
    from repro.nf import Monitor

    return [
        IPFilter("nf1", rules=[AclRule.make(src="192.0.2.0/24", verdict=Verdict.DROP)]),
        Monitor("mon"),
        IPFilter("nf3", rules=[AclRule.make(verdict=Verdict.DROP)]),
    ]


def run_table3():
    packets = uniform_flow_packets(packets=8)
    results = {}
    for platform_name in ("bess", "onvm"):
        original = make_platform(platform_name, ServiceChain(build_chain()))
        speedybox = make_platform(platform_name, SpeedyBox(build_chain()))

        orig_outcomes = original.process_all(clone_packets(packets))
        sbox_outcomes = speedybox.process_all(clone_packets(packets))

        orig_sub = orig_outcomes[-1]
        per_nf = {}
        hop = original._transport_cycles_per_hop()
        for name, meter in orig_sub.report.nf_meters:
            per_nf[name] = meter.cycles(original.costs) + hop

        monitored_orig = make_platform(platform_name, ServiceChain(build_monitored_chain()))
        monitored_sbox = make_platform(platform_name, SpeedyBox(build_monitored_chain()))
        mon_orig_sub = monitored_orig.process_all(clone_packets(packets))[-1]
        mon_sbox_sub = monitored_sbox.process_all(clone_packets(packets))[-1]

        results[platform_name] = {
            "per_nf": per_nf,
            "orig_aggregate": chain_cycles(orig_sub),
            "sbox_aggregate": chain_cycles(sbox_outcomes[-1]),
            "monitored_orig": chain_cycles(mon_orig_sub),
            "monitored_sbox": chain_cycles(mon_sbox_sub),
            "monitor_counts": monitored_sbox.runtime.nf_by_name["mon"].total_packets(),
        }
    return results


def _report(results):
    rows = []
    for platform_name, label in (("bess", "BESS"), ("onvm", "ONVM")):
        data = results[platform_name]
        per_nf = data["per_nf"]
        rows.append(
            [label, per_nf.get("nf1", 0), per_nf.get("nf2", 0), per_nf.get("nf3", 0), data["orig_aggregate"]]
        )
        saving = percent_reduction(data["orig_aggregate"], data["sbox_aggregate"])
        rows.append(
            [f"{label} w/ SBox", "-", "-", "-", f"{data['sbox_aggregate']:.0f} (-{saving:.1f}%)"]
        )
    text = format_table(
        ["(CPU cycle)", "NF1", "NF2", "NF3", "Aggregate"],
        rows,
        title="Table III: early packet drop saves CPU cycles",
    )
    extension_rows = []
    for platform_name, label in (("bess", "BESS"), ("onvm", "ONVM")):
        data = results[platform_name]
        saving = percent_reduction(data["monitored_orig"], data["monitored_sbox"])
        extension_rows.append(
            [label, data["monitored_orig"], f"{data['monitored_sbox']:.0f} (-{saving:.1f}%)"]
        )
    text += "\n\n" + format_table(
        ["(CPU cycle)", "Original", "w/ SBox"],
        extension_rows,
        title=(
            "Extension: a Monitor in front of the firewall — pre-drop state\n"
            "fidelity keeps its counters exact, trading back part of the saving"
        ),
    )
    save_result("table3_early_drop", text)


def _assert_shape(results):
    for platform_name in ("bess", "onvm"):
        data = results[platform_name]
        # All three NFs ran on the original path...
        assert set(data["per_nf"]) == {"nf1", "nf2", "nf3"}
        # ...with per-NF costs in the paper's ballpark (~500-700 cycles).
        for cycles in data["per_nf"].values():
            assert 350 <= cycles <= 800
        # Early drop saves ~65% of aggregate cycles (paper: 65.0 / 64.8).
        saving = percent_reduction(data["orig_aggregate"], data["sbox_aggregate"])
        assert 50.0 <= saving <= 75.0, f"{platform_name}: {saving:.1f}% (paper: ~65%)"
        # With a Monitor in front of the firewall the saving shrinks (its
        # state function still runs on every dropped packet) but stays
        # substantial — and every dropped packet is counted (8 packets).
        monitored_saving = percent_reduction(data["monitored_orig"], data["monitored_sbox"])
        assert 25.0 <= monitored_saving < saving
        assert data["monitor_counts"] == 8


def test_table3_early_drop(benchmark):
    results = benchmark.pedantic(run_table3, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
