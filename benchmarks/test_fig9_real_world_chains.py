"""Figure 9 — CDF of flow processing time on real-world service chains.

Paper setup: two chains derived from IETF service-chaining use cases,
with concrete NFs substituted ("IDS" -> Snort, "NAT" -> MazuNAT,
"Load Balancer" -> Maglev, "Firewall" -> IPFilter):

- Chain 1: MazuNAT + Maglev + Monitor + IPFilter (the Motivation chain;
  no Maglev events in this experiment),
- Chain 2: IPFilter + Snort + Monitor,

driven by the Benson et al. datacenter trace with payloads synthesised
against the Snort rules.  The metric is the *flow processing time*: the
aggregate time spent processing all packets of a flow.

Paper anchors (p50 flow-time reduction): Chain 1: 39.6% (BESS) / 40.2%
(ONVM); Chain 2: 41.3% (BESS) / 34.2% (ONVM).
"""

from benchmarks.harness import per_flow_processing_time_us, percent_reduction, save_result
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor, SnortIDS
from repro.nf.maglev import Backend
from repro.nf.snort.rules import parse_rules
from repro.stats import Distribution, format_table
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator

RULES_TEXT = """
alert tcp any any -> any any (msg:"c2 beacon"; content:"malware-beacon"; sid:9001;)
log tcp any any -> any any (msg:"http get"; content:"GET /"; sid:9002;)
"""
RULES = parse_rules(RULES_TEXT)


def backends():
    return [Backend.make(f"b{i}", f"192.168.50.{i + 1}", 9000) for i in range(4)]


def chain1():
    return [
        MazuNAT("mazunat", external_ip="203.0.113.50", internal_prefix="10.0.0.0/8"),
        MaglevLoadBalancer("maglev", backends=backends(), table_size=131),
        Monitor("monitor"),
        IPFilter("ipfilter"),
    ]


def chain2():
    return [IPFilter("ipfilter"), SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def trace_packets():
    # Flow-size body tuned so the median flow carries ~8-10 data packets,
    # matching the ~20 us median flow times of the paper's trace replay
    # (each flow also pays a SYN and a FIN).
    config = DatacenterTraceConfig(
        flows=150,
        seed=2019,
        lognormal_mu=2.3,
        lognormal_sigma=0.8,
        large_packet_fraction=0.25,
        max_packets_per_flow=120,
    )
    specs = DatacenterTraceGenerator(config, RULES).generate_flows()
    return TrafficGenerator(specs, interleave="round_robin").packets()


def run_fig9():
    packets = trace_packets()
    results = {}
    for chain_name, builder in (("chain1", chain1), ("chain2", chain2)):
        for platform_name in ("bess", "onvm"):
            original = Distribution(
                per_flow_processing_time_us(lambda: ServiceChain(builder()), platform_name, packets)
            )
            speedybox = Distribution(
                per_flow_processing_time_us(lambda: SpeedyBox(builder()), platform_name, packets)
            )
            results[(chain_name, platform_name)] = {"original": original, "speedybox": speedybox}
    return results


def _report(results):
    for chain_name, title in (
        ("chain1", "Chain 1: MazuNAT+Maglev+Monitor+IPFilter"),
        ("chain2", "Chain 2: IPFilter+Snort+Monitor"),
    ):
        rows = []
        for platform_name, label in (("bess", "BESS"), ("onvm", "ONVM")):
            data = results[(chain_name, platform_name)]
            for variant, dist in (("", data["original"]), (" w/ SBox", data["speedybox"])):
                rows.append(
                    [f"{label}{variant}", dist.p(0.10), dist.p50, dist.p90, dist.p99, dist.mean]
                )
            reduction = percent_reduction(data["original"].p50, data["speedybox"].p50)
            rows.append([f"{label} p50 reduction", f"-{reduction:.1f}%", "", "", "", ""])
        text = format_table(
            ["Config", "p10 (us)", "p50 (us)", "p90 (us)", "p99 (us)", "mean (us)"],
            rows,
            title=f"Figure 9 ({title}): flow processing time distribution",
        )
        save_result(f"fig9_{chain_name}", text)

        # Also persist the CDF series the figure plots.
        for platform_name in ("bess", "onvm"):
            data = results[(chain_name, platform_name)]
            lines = ["flow_time_us,cdf,variant"]
            for variant, dist in (("original", data["original"]), ("speedybox", data["speedybox"])):
                for value, fraction in dist.cdf():
                    lines.append(f"{value:.3f},{fraction:.4f},{platform_name}-{variant}")
            save_result(f"fig9_{chain_name}_{platform_name}_cdf", "\n".join(lines))


def _assert_shape(results):
    paper_p50 = {
        ("chain1", "bess"): 39.6,
        ("chain1", "onvm"): 40.2,
        ("chain2", "bess"): 41.3,
        ("chain2", "onvm"): 34.2,
    }
    for key, paper_value in paper_p50.items():
        data = results[key]
        reduction = percent_reduction(data["original"].p50, data["speedybox"].p50)
        # Shape claim: a substantial p50 reduction, same ballpark as the
        # paper's 34-41%.
        assert 25.0 <= reduction <= 65.0, f"{key}: {reduction:.1f}% (paper: {paper_value}%)"
        # SpeedyBox dominates across the distribution, not just at p50.
        assert data["speedybox"].p90 < data["original"].p90
        assert data["speedybox"].mean < data["original"].mean


def test_fig9_real_world_chains(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    _report(results)
    _assert_shape(results)
