"""Failover-recovery sweep — recovery cost vs checkpoint interval.

Kills 1 of 4 replicas halfway through the scale-out churn workload and
recovers it, once per checkpoint interval.  The interval is the classic
snapshot-vs-log knob: a short interval snapshots often and replays
little; a long one checkpoints rarely and rebuilds more from the input
log.  Each run goes through :func:`verify_equivalence_failover`, so
every reported point is also a proof that recovery was loss-free,
duplicate-free and state-identical — the shared NAT port pool and
monitor aggregate included.

Recovery cost is charged onto the packets that paid it: with the
default ``charge_recovery`` policy every buffered in-flight delivery
carries the failure-to-delivery wall time as simulated stall, so the
``stall ms`` column is the tail-latency bill of the failover, not a
wall-clock side channel.  ``repro obs explain`` decomposes the same
charge per packet.
"""

from benchmarks.harness import save_result
from repro.ft import (
    SharedAggregate,
    SharedPortPool,
    TransactionalStore,
    verify_equivalence_failover,
)
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.stats import format_table
from repro.traffic import FlowSpec, TrafficGenerator

CHECKPOINT_INTERVALS = (8, 16, 32)
REPLICAS = 4
FLOWS = 64
CHURN = 16
PORTS = (20000, 60000)
EXTERNAL_IP = "203.0.113.80"


def build_chain():
    return [
        MazuNAT("nat", external_ip=EXTERNAL_IP, port_range=PORTS),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def shared_chain_factory():
    """Replica chains over one transactional store per run: ports come
    from the shared pool, monitor totals from the shared aggregate."""
    store = TransactionalStore()
    pool = SharedPortPool(store, port_range=PORTS)
    aggregate = SharedAggregate(store, name="mon_total")

    def chain():
        return [
            MazuNAT("nat", external_ip=EXTERNAL_IP, port_range=PORTS, port_pool=pool),
            Monitor("mon", aggregate=aggregate),
            IPFilter("fw"),
        ]

    return chain, aggregate


def workload(flows=FLOWS, packets_per_flow=14):
    specs = [
        FlowSpec.tcp(
            f"10.3.{i // 250}.{i % 250 + 1}",
            f"99.2.0.{i % 200 + 1}",
            6000 + i,
            80,
            packets=packets_per_flow,
            handshake=True,
            fin=True,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=9).packets()


def sweep(packets):
    results = {}
    for interval in CHECKPOINT_INTERVALS:
        factory, aggregate = shared_chain_factory()
        report = verify_equivalence_failover(
            build_chain,
            packets,
            kill_at=len(packets) // 2,
            cluster_chain_factory=factory,
            replicas=REPLICAS,
            checkpoint_interval=interval,
            recover_after=len(packets) // 8,
            churn=CHURN,
        )
        results[interval] = (report, aggregate)
    return results


def test_ft_recovery_sweep(benchmark):
    packets = workload()
    results = benchmark.pedantic(lambda: sweep(packets), rounds=1, iterations=1)

    table_rows = []
    metrics = {"packets": len(packets), "replicas": REPLICAS, "churn": CHURN}
    for interval in CHECKPOINT_INTERVALS:
        report, aggregate = results[interval]
        table_rows.append(
            [
                interval,
                report.buffered_packets,
                report.replayed_packets,
                report.flows_restored,
                report.flows_rebuilt,
                f"{report.recovery_ms:.2f}",
                f"{report.stall_charged_ns / 1e6:.2f}",
                "yes" if report.equivalent else "NO",
            ]
        )
        prefix = f"interval_{interval}"
        metrics[f"{prefix}_recovery_ms"] = round(report.recovery_ms, 3)
        metrics[f"{prefix}_charged_packets"] = report.charged_packets
        metrics[f"{prefix}_stall_charged_ms"] = round(report.stall_charged_ns / 1e6, 3)
        metrics[f"{prefix}_buffered"] = report.buffered_packets
        metrics[f"{prefix}_delivered"] = report.delivered_packets
        metrics[f"{prefix}_replayed"] = report.replayed_packets
        metrics[f"{prefix}_restored"] = report.flows_restored
        metrics[f"{prefix}_rebuilt"] = report.flows_rebuilt
        metrics[f"{prefix}_equivalent"] = int(report.equivalent)
        metrics[f"{prefix}_divergences"] = len(report.divergences)
        # every packet counted exactly once by the shared aggregate,
        # recovery replay deduped by the transactional store
        assert aggregate.packets == len(packets), (interval, aggregate.packets)

    text = format_table(
        [
            "interval",
            "buffered",
            "replayed",
            "restored",
            "rebuilt",
            "recovery ms",
            "stall ms",
            "equivalent",
        ],
        table_rows,
        title=(
            f"failover recovery vs checkpoint interval — kill 1/{REPLICAS} replicas "
            f"mid-run, {FLOWS} flows, churn {CHURN}, chain nat|monitor|firewall"
        ),
    )
    save_result("ft_recovery", text, metrics=metrics)

    for interval in CHECKPOINT_INTERVALS:
        report, __ = results[interval]
        assert report.equivalent, report.summary()
        assert report.buffered_packets == report.delivered_packets
        # default charge_recovery policy: every buffered delivery carries
        # the failover stall on its simulated latency
        assert report.charged_packets == report.delivered_packets
        if report.charged_packets:
            assert report.stall_charged_ns > 0
