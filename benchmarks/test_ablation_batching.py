"""Ablation — DPDK-style RX/TX batching.

The paper's testbed drives packets with DPDK bursts; our default cost
model charges NIC driver work per packet (batch 1).  This ablation sweeps
the batch size to show (a) how much of the per-packet budget is NIC
amortisation and (b) that SpeedyBox's relative win is insensitive to the
batching regime — the consolidation savings live in the chain, not the
driver.
"""

from benchmarks.harness import percent_reduction, save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.platform import BessPlatform, PlatformConfig
from repro.stats import format_table
from repro.traffic.generator import clone_packets

BATCHES = [1, 4, 16, 32, 64]


def build_chain():
    return [IPFilter(f"fw{i}") for i in range(3)]


def measure(runtime_cls, batch):
    platform = BessPlatform(runtime_cls(build_chain()), PlatformConfig(batch_size=batch))
    packets = uniform_flow_packets(packets=60)
    rate = platform.run_load(clone_packets(packets)).throughput_mpps
    platform.reset()
    latency = platform.process_all(clone_packets(packets[:4]))[-1].latency_ns / 1000.0
    return rate, latency


def run_ablation():
    results = {}
    for batch in BATCHES:
        orig_rate, orig_latency = measure(ServiceChain, batch)
        sbox_rate, sbox_latency = measure(SpeedyBox, batch)
        results[batch] = {
            "orig_rate": orig_rate,
            "sbox_rate": sbox_rate,
            "orig_latency": orig_latency,
            "sbox_latency": sbox_latency,
            "latency_reduction": percent_reduction(orig_latency, sbox_latency),
        }
    return results


def _report(results):
    rows = [
        [
            batch,
            f"{d['orig_rate']:.2f}",
            f"{d['sbox_rate']:.2f}",
            f"{d['orig_latency']:.3f}",
            f"{d['sbox_latency']:.3f}",
            f"-{d['latency_reduction']:.1f}%",
        ]
        for batch, d in sorted(results.items())
    ]
    save_result(
        "ablation_batching",
        format_table(
            ["batch", "orig Mpps", "sbox Mpps", "orig us", "sbox us", "sbox latency win"],
            rows,
            title="Ablation: RX/TX batch size (BESS, 3 x IPFilter)",
        ),
    )


def _assert_shape(results):
    # Rate rises monotonically with batch size for both variants.
    for key in ("orig_rate", "sbox_rate"):
        series = [results[b][key] for b in BATCHES]
        assert series == sorted(series)
    # SpeedyBox's latency win holds across all batching regimes (within
    # a few points): the savings are chain-side, not driver-side.
    wins = [results[b]["latency_reduction"] for b in BATCHES]
    assert max(wins) - min(wins) < 15.0
    assert min(wins) > 30.0


def test_ablation_batching(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=2, iterations=1)
    _report(results)
    _assert_shape(results)
