"""Figure 5 — effect of state function parallelism.

Paper setup: a chain of 1-3 identical synthetic NFs, each with no header
action and one Snort-inspection-equivalent state function (READ payload,
so all batches are pairwise parallelizable).  Measures processing rate
(5a) and per-packet latency (5b) for BESS/ONVM with and without SpeedyBox.

Paper anchors: BESS original rate decays with the number of state
functions while BESS w/ SpeedyBox holds (2.1x at three SFs); ONVM's rate
stays flat either way (pipelining); SpeedyBox cuts BESS latency by 59%
at three SFs (optimal (N-1)/N) and loses slightly at one SF.
"""

from benchmarks.harness import (
    chain_latency_cycles,
    make_platform,
    percent_reduction,
    save_result,
    uniform_flow_packets,
)
from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import SyntheticNF
from repro.stats import format_table
from repro.traffic.generator import clone_packets

SNORT_EQUIVALENT_CYCLES = 1600.0


def build_chain(n):
    return lambda: [
        SyntheticNF(
            f"synthetic{i}",
            sf_payload_class=PayloadClass.READ,
            sf_work_cycles=SNORT_EQUIVALENT_CYCLES,
        )
        for i in range(n)
    ]


def run_fig5():
    packets = uniform_flow_packets(packets=40)
    results = {}
    for platform_name in ("bess", "onvm"):
        for variant, runtime_cls in (("original", ServiceChain), ("speedybox", SpeedyBox)):
            for n in (1, 2, 3):
                platform = make_platform(platform_name, runtime_cls(build_chain(n)()))
                load = platform.run_load(clone_packets(packets))
                platform.reset()
                outcomes = platform.process_all(clone_packets(packets[:4]))
                results[(platform_name, variant, n)] = {
                    "rate_mpps": load.throughput_mpps,
                    "latency_us": outcomes[-1].latency_ns / 1000.0,
                }
    return results


def _report(results):
    for metric, label, fname in (
        ("rate_mpps", "Processing Rate (Mpps)", "fig5a_rate"),
        ("latency_us", "Processing Latency (us)", "fig5b_latency"),
    ):
        rows = []
        for n in (1, 2, 3):
            rows.append(
                [
                    n,
                    results[("bess", "original", n)][metric],
                    results[("bess", "speedybox", n)][metric],
                    results[("onvm", "original", n)][metric],
                    results[("onvm", "speedybox", n)][metric],
                ]
            )
        text = format_table(
            ["# State Function", "BESS", "BESS w/ SBox", "ONVM", "ONVM w/ SBox"],
            rows,
            title=f"Figure 5: {label} vs number of state functions",
        )
        save_result(fname, text)


def _assert_shape(results):
    def rate(platform, variant, n):
        return results[(platform, variant, n)]["rate_mpps"]

    def latency(platform, variant, n):
        return results[(platform, variant, n)]["latency_us"]

    # 5a: BESS original rate decays roughly as 1/N.
    assert rate("bess", "original", 1) > rate("bess", "original", 2) > rate("bess", "original", 3)
    assert rate("bess", "original", 3) < 0.5 * rate("bess", "original", 1)

    # 5a: SpeedyBox keeps BESS's rate nearly flat and beats the original
    # by ~2x at three state functions (paper: 2.1x).
    speedup3 = rate("bess", "speedybox", 3) / rate("bess", "original", 3)
    assert 1.7 <= speedup3 <= 3.0, f"BESS speedup at 3 SFs: {speedup3:.2f}x (paper: 2.1x)"
    assert rate("bess", "speedybox", 3) > 0.85 * rate("bess", "speedybox", 1)

    # 5a: ONVM's pipelined rate stays flat as the chain grows.
    assert rate("onvm", "original", 3) > 0.8 * rate("onvm", "original", 1)

    # 5b: latency reduction at 3 SFs approaches (N-1)/N (paper: 59%).
    for platform in ("bess", "onvm"):
        reduction = percent_reduction(latency(platform, "original", 3), latency(platform, "speedybox", 3))
        assert 45.0 <= reduction <= 70.0, f"{platform}: {reduction:.1f}% (paper: 59%)"

    # 5b: with a single state function there is a slight degradation
    # (collection overhead), not a win.
    assert latency("bess", "speedybox", 1) > 0.95 * latency("bess", "original", 1)

    # 5b: original latency grows with the chain; SpeedyBox's stays flat.
    assert latency("bess", "original", 3) > 2.0 * latency("bess", "original", 1)
    assert latency("bess", "speedybox", 3) < 1.25 * latency("bess", "speedybox", 1)


def test_fig5_state_function_parallelism(benchmark):
    results = benchmark.pedantic(run_fig5, rounds=2, iterations=1)
    _report(results)
    _assert_shape(results)
