"""Figure 7 — latency reduction split between the two optimizations.

Paper setup: the Snort+Monitor chain; total latency reduction is
decomposed into the contribution of header-action consolidation (HA) and
state-function parallelism (SF).

Paper anchors: BESS latency falls 35.9%, split 49.4% HA / 50.6% SF;
on ONVM parallelism contributes a larger share (58.9%) because inter-core
communication overhead eats part of the consolidation benefit.

Methodology here (ablation): run three configurations —
original, SpeedyBox with parallelism disabled (HA only), and full
SpeedyBox — and attribute (original − HA-only) to HA and
(HA-only − full) to SF.
"""

from benchmarks.harness import make_platform, percent_reduction, save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import Monitor, SnortIDS
from repro.stats import format_table
from repro.traffic.generator import clone_packets

RULES_TEXT = """
alert tcp any any -> any any (msg:"exploit"; content:"exploit"; sid:1;)
log tcp any any -> any any (msg:"http"; content:"GET "; sid:2;)
"""


def build_chain():
    return [SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def latency_us(platform_name, runtime):
    platform = make_platform(platform_name, runtime)
    packets = uniform_flow_packets(packets=4, payload=b"x" * 26)
    outcomes = platform.process_all(clone_packets(packets))
    return outcomes[-1].latency_ns / 1000.0


def run_fig7():
    results = {}
    for platform_name in ("bess", "onvm"):
        original = latency_us(platform_name, ServiceChain(build_chain()))
        ha_only = latency_us(platform_name, SpeedyBox(build_chain(), enable_parallelism=False))
        full = latency_us(platform_name, SpeedyBox(build_chain()))
        ha_gain = original - ha_only
        sf_gain = ha_only - full
        total_gain = original - full
        results[platform_name] = {
            "original_us": original,
            "ha_only_us": ha_only,
            "full_us": full,
            "reduction_pct": percent_reduction(original, full),
            "ha_share_pct": 100.0 * ha_gain / total_gain if total_gain else 0.0,
            "sf_share_pct": 100.0 * sf_gain / total_gain if total_gain else 0.0,
        }
    return results


def _report(results):
    rows = []
    for platform_name, label in (("bess", "BESS"), ("onvm", "ONVM")):
        data = results[platform_name]
        rows.append(
            [
                label,
                data["original_us"],
                data["full_us"],
                f"-{data['reduction_pct']:.1f}%",
                f"HA {data['ha_share_pct']:.1f}%",
                f"SF {data['sf_share_pct']:.1f}%",
            ]
        )
    text = format_table(
        ["Platform", "Original (us)", "w/ SBox (us)", "Reduction", "HA share", "SF share"],
        rows,
        title="Figure 7: latency reduction of Snort+Monitor and optimization split",
    )
    save_result("fig7_latency_breakdown", text)


def _assert_shape(results):
    # BESS: overall latency falls substantially (paper: 35.9%) with the
    # two optimizations contributing about half each (paper: 49.4/50.6).
    bess = results["bess"]
    assert 20.0 <= bess["reduction_pct"] <= 60.0, f"BESS: {bess['reduction_pct']:.1f}% (paper: 35.9%)"
    assert 35.0 <= bess["ha_share_pct"] <= 65.0
    assert 35.0 <= bess["sf_share_pct"] <= 65.0

    # ONVM: latency also falls; inter-core overhead (ring to the TX
    # thread, wave signalling) shrinks the net gains.  The paper found
    # SF parallelism the larger contributor there (58.9%); our model
    # attributes more to HA — see EXPERIMENTS.md.
    onvm = results["onvm"]
    assert 12.0 <= onvm["reduction_pct"] <= 60.0, f"ONVM: {onvm['reduction_pct']:.1f}%"
    assert 15.0 <= onvm["ha_share_pct"] <= 85.0
    assert 15.0 <= onvm["sf_share_pct"] <= 85.0
    for data in (bess, onvm):
        assert abs(data["ha_share_pct"] + data["sf_share_pct"] - 100.0) < 1e-6

    # ONVM's absolute latencies exceed BESS's (ring hops), as in Fig. 7.
    assert results["onvm"]["original_us"] > results["bess"]["original_us"]


def test_fig7_latency_breakdown(benchmark):
    results = benchmark.pedantic(run_fig7, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
