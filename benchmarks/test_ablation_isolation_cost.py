"""Ablation — how isolation cost (R4) scales SpeedyBox's benefit.

The paper argues redundant I/O from isolation (R4) is one of the four
redundancies consolidation mitigates.  This ablation sweeps the ONVM
cross-core transfer cost (cache-coherence traffic per ring hop) and
measures the latency advantage of SpeedyBox on a 4-NF chain: the pricier
the isolation, the more the fast path saves.
"""

from benchmarks.harness import percent_reduction, save_result, uniform_flow_packets
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.platform import CostModel, OpenNetVMPlatform, PlatformConfig
from repro.stats import format_table
from repro.traffic.generator import clone_packets

BASE_SYNC = CostModel().cross_core_sync


def build_chain():
    return [IPFilter(f"fw{i}") for i in range(4)]


def latency_us(runtime, sync_cycles):
    config = PlatformConfig(cost_model=CostModel().with_overrides(cross_core_sync=sync_cycles))
    platform = OpenNetVMPlatform(runtime, config)
    packets = uniform_flow_packets(packets=4)
    outcomes = platform.process_all(clone_packets(packets))
    return outcomes[-1].latency_ns / 1000.0


def run_ablation():
    results = {}
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        sync = BASE_SYNC * factor
        original = latency_us(ServiceChain(build_chain()), sync)
        speedybox = latency_us(SpeedyBox(build_chain()), sync)
        results[factor] = {
            "sync_cycles": sync,
            "original_us": original,
            "speedybox_us": speedybox,
            "reduction_pct": percent_reduction(original, speedybox),
        }
    return results


def _report(results):
    rows = [
        [
            f"{factor}x ({data['sync_cycles']:.0f} cyc)",
            f"{data['original_us']:.3f}",
            f"{data['speedybox_us']:.3f}",
            f"-{data['reduction_pct']:.1f}%",
        ]
        for factor, data in sorted(results.items())
    ]
    save_result(
        "ablation_isolation_cost",
        format_table(
            ["cross-core cost", "original (us)", "w/ SBox (us)", "reduction"],
            rows,
            title="Ablation: ONVM isolation cost vs SpeedyBox benefit (4 x IPFilter)",
        ),
    )


def _assert_shape(results):
    reductions = [data["reduction_pct"] for __, data in sorted(results.items())]
    # The pricier the per-hop isolation, the bigger consolidation's win.
    assert reductions == sorted(reductions)
    # Original latency grows with isolation cost; the fast path (no NF
    # hops at all) barely moves.
    assert results[4.0]["original_us"] > 1.5 * results[0.25]["original_us"]
    assert results[4.0]["speedybox_us"] < 1.2 * results[0.25]["speedybox_us"]


def test_ablation_isolation_cost(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
