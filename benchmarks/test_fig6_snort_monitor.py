"""Figure 6 — consolidation + parallelism on the Snort+Monitor chain.

Paper setup: a chain of Snort followed by Monitor; both contribute
header actions and state functions, so both optimizations apply.

Paper anchors (6a, CPU cycles/packet): BESS 1082 -> 581 (-46.3%), ONVM
1202 -> 632 (-47.4%).  (6b, rate): BESS 0.601 -> 0.894 Mpps (parallelism
helps the run-to-completion model); ONVM 0.543 -> 0.552 (pipelined
ONVM's rate does not improve — matching OpenNetVM's own paper).
"""

from benchmarks.harness import (
    chain_main_core_cycles,
    make_platform,
    percent_reduction,
    save_result,
    uniform_flow_packets,
)
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import Monitor, SnortIDS
from repro.stats import format_table
from repro.traffic.generator import clone_packets

RULES_TEXT = """
alert tcp any any -> any any (msg:"exploit"; content:"exploit"; sid:1;)
alert tcp any any -> any any (msg:"beacon"; content:"beacon"; sid:2;)
log tcp any any -> any any (msg:"http"; content:"GET "; sid:3;)
"""


def build_chain():
    return [SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def run_fig6():
    packets = uniform_flow_packets(packets=40, payload=b"benign traffic on the wire")
    results = {}
    for platform_name in ("bess", "onvm"):
        for variant, runtime_cls in (("original", ServiceChain), ("speedybox", SpeedyBox)):
            platform = make_platform(platform_name, runtime_cls(build_chain()))
            load = platform.run_load(clone_packets(packets))
            platform.reset()
            outcomes = platform.process_all(clone_packets(packets[:4]))
            results[(platform_name, variant)] = {
                "cycles": chain_main_core_cycles(outcomes[-1]),
                "rate_mpps": load.throughput_mpps,
            }
    return results


def _report(results):
    cycle_rows = []
    rate_rows = []
    for platform_name, label in (("bess", "BESS"), ("onvm", "OpenNetVM")):
        orig = results[(platform_name, "original")]
        sbox = results[(platform_name, "speedybox")]
        cycle_rows.append([label, orig["cycles"], sbox["cycles"],
                           f"-{percent_reduction(orig['cycles'], sbox['cycles']):.1f}%"])
        rate_rows.append([label, orig["rate_mpps"], sbox["rate_mpps"],
                          f"{sbox['rate_mpps'] / orig['rate_mpps']:.2f}x"])
    save_result(
        "fig6a_cpu_cycles",
        format_table(
            ["Platform", "Original", "w/ SBox", "Reduction"],
            cycle_rows,
            title="Figure 6(a): CPU cycle per packet, Snort+Monitor chain",
        ),
    )
    save_result(
        "fig6b_rate",
        format_table(
            ["Platform", "Original (Mpps)", "w/ SBox (Mpps)", "Speedup"],
            rate_rows,
            title="Figure 6(b): processing rate, Snort+Monitor chain",
        ),
    )


def _assert_shape(results):
    for platform_name in ("bess", "onvm"):
        orig = results[(platform_name, "original")]
        sbox = results[(platform_name, "speedybox")]
        # 6a: consolidation cuts per-packet CPU cycles substantially
        # (paper: 46.3% / 47.4%).
        reduction = percent_reduction(orig["cycles"], sbox["cycles"])
        assert 25.0 <= reduction <= 60.0, f"{platform_name}: {reduction:.1f}% (paper: ~46%)"

    # 6b: parallelism improves the run-to-completion BESS rate...
    bess_speedup = (
        results[("bess", "speedybox")]["rate_mpps"] / results[("bess", "original")]["rate_mpps"]
    )
    assert bess_speedup >= 1.15, f"BESS speedup {bess_speedup:.2f}x (paper: 1.32-1.49x)"

    # ...but NOT the already-pipelined ONVM rate (paper: 0.543 -> 0.552,
    # i.e. ~1.0x).  Our model concentrates all fast-path work on the
    # Manager core, which shows up as a modest rate penalty instead of
    # parity — see EXPERIMENTS.md for the discrepancy discussion.
    onvm_speedup = (
        results[("onvm", "speedybox")]["rate_mpps"] / results[("onvm", "original")]["rate_mpps"]
    )
    assert 0.55 <= onvm_speedup <= 1.2, f"ONVM speedup {onvm_speedup:.2f}x (paper: ~1.0x)"
    # The ONVM rate gain, if any, is far smaller than BESS's.
    assert onvm_speedup < bess_speedup


def test_fig6_snort_monitor(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=2, iterations=1)
    _report(results)
    _assert_shape(results)
