"""Ablation — the Event Table's per-packet cost.

Observation 2 says events are rare but must be *checked* constantly: the
fast path evaluates every active condition of the flow before and after
the state functions.  This ablation sweeps the number of registered
events per flow and measures the fast-path cost — quantifying the
paper's implicit claim that the Event Table is cheap when NFs register a
handful of events per flow.
"""

from benchmarks.harness import chain_cycles, save_result, uniform_flow_packets
from repro.core.actions import Drop, Forward
from repro.core.framework import SpeedyBox
from repro.core.local_mat import InstrumentationAPI
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform import BessPlatform
from repro.stats import format_table
from repro.traffic.generator import clone_packets


class EventHeavyNF(NetworkFunction):
    """Registers ``event_count`` never-firing events per flow."""

    def __init__(self, name: str, event_count: int):
        super().__init__(name)
        self.event_count = event_count

    @staticmethod
    def never() -> bool:
        return False

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)
        api.add_header_action(fid, Forward())
        for __ in range(self.event_count):
            api.register_event(fid, self.never, update_action=Drop())


def fast_path_cycles(event_count: int) -> float:
    platform = BessPlatform(SpeedyBox([EventHeavyNF("ev", event_count)]))
    packets = uniform_flow_packets(packets=4)
    outcomes = platform.process_all(clone_packets(packets))
    return chain_cycles(outcomes[-1])


def run_ablation():
    return {count: fast_path_cycles(count) for count in (0, 1, 2, 4, 8, 16, 32)}


def _report(results):
    baseline = results[0]
    rows = [
        [count, f"{cycles:.0f}", f"+{cycles - baseline:.0f}"]
        for count, cycles in sorted(results.items())
    ]
    save_result(
        "ablation_event_overhead",
        format_table(
            ["events per flow", "fast-path cycles", "overhead vs none"],
            rows,
            title="Ablation: fast-path cost vs registered events per flow",
        ),
    )


def _assert_shape(results):
    # Cost grows linearly in the number of active events (two checks per
    # packet: pre and post).
    per_event = (results[32] - results[0]) / 32
    assert per_event > 0
    mid_estimate = results[0] + per_event * 8
    assert abs(results[8] - mid_estimate) < 1.0  # linear to numerical noise
    # A handful of events costs a small fraction of the fast path (the
    # realistic regime: one Maglev event, maybe a DoS event).
    assert results[2] - results[0] < 0.2 * results[0]


def test_ablation_event_overhead(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    _report(results)
    _assert_shape(results)
