"""Span-sampling and telemetry overhead benchmark (the obs perf gate).

The flow-span recorder's contract is that production-grade sampling
(1 in 64 flows, default per-flow cap) rides on the fast engine — the
compiled flow closures and the analytic replay stay enabled, and the
per-packet cost for an unsampled flow is one dict probe.  This
benchmark measures the Figure-8 worst case (BESS, 9-NF IPFilter chain)
over many-flow traffic three ways:

- ``off``       — no recorder attached (the uninstrumented fast path);
- ``sampled``   — ``FlowSpanRecorder(every=64)``, the production config;
- ``full``      — ``every=1`` with no per-flow cap (every packet, the
  exact-attribution configuration the integration tests use).

Two further cell pairs gate the gen-3 windowed-telemetry layer
(:mod:`repro.obs.timeseries` + health model + SLO engine, default
sampling) on both fast-path shapes:

- ``timeseries`` — the compiled per-packet path with a
  :class:`TimeSeries` attached to the platform (post-run ingestion);
- ``lane_off`` / ``lane_timeseries`` — the whole-batch columnar lane
  without and with the same telemetry stack (needs numpy; the cells
  report zero and are skipped by the checker without it).

The tail-latency forensics engine gets its own cell pair on the
compiled per-packet path:

- ``forensics``     — :class:`ForensicsEngine` at the production
  stride (1-in-16 packet sampling, worst-K ring), post-run
  decomposition only (≤ the same 5 % budget);
- ``forensics_off`` — the engine constructed but ``enabled=False``,
  the disabled-mode configuration every run without
  ``--forensics-out`` pays: one attribute check per run, ~0 %.

Best-of-``REPEATS`` wall-clock for each lands in
``BENCH_obs_overhead.json``; the gate asserts every instrumented cell
costs at most ``MAX_SAMPLED_OVERHEAD`` (5 %) over its uninstrumented
twin, and ``benchmarks/check_obs_overhead.py`` re-checks the committed
JSON in CI.
"""

from __future__ import annotations

import time

from benchmarks.harness import make_platform, save_result
from repro import vector as vec
from repro.core.actions import Modify
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter, SyntheticNF
from repro.obs import FlowSpanRecorder, ForensicsEngine, HealthModel, SLOEngine, TimeSeries
from repro.platform import PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.columnar import uniform_batch
from repro.traffic.generator import clone_packets

FLOWS = 256
PACKETS_PER_FLOW = 200
REPEATS = 8
CHAIN_LENGTH = 9
MAX_SAMPLED_OVERHEAD = 0.05
#: telemetry window width for the gate cells (packet clock keeps the
#: window count identical across machines)
TS_WINDOW_PACKETS = 4_096
SLO_SPECS = ("p99<250us", "loss<0.1%")
#: batch-lane telemetry cells: modest churn through a bounded table
LANE_FLOWS = 20_000
LANE_PPF = 10
LANE_CAP = 8_192
LANE_BLOCK = 4_096


def build_chain():
    return [IPFilter(f"ipfilter{i}") for i in range(CHAIN_LENGTH)]


def many_flow_packets():
    """256 interleaved flows, so 1-in-64 sampling is non-degenerate."""
    specs = [
        FlowSpec.tcp(
            f"10.{index // 250}.{index % 250}.1",
            "20.0.0.1",
            2000 + index,
            80,
            packets=PACKETS_PER_FLOW,
            payload=b"x" * 26,
        )
        for index in range(FLOWS)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


def timed_run(packets, recorder):
    platform = make_platform("bess", SpeedyBox(build_chain()), spans=recorder)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    seconds = time.perf_counter() - started
    assert result.delivered == len(packets)
    return seconds


def timed_forensics_run(packets, engine):
    platform = make_platform("bess", SpeedyBox(build_chain()), forensics=engine)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    seconds = time.perf_counter() - started
    assert result.delivered == len(packets)
    return seconds


def make_telemetry():
    """Time-series + health + SLO at default sampling, all subscribed."""
    timeseries = TimeSeries(window_packets=TS_WINDOW_PACKETS)
    HealthModel(timeseries=timeseries)
    SLOEngine.from_specs(list(SLO_SPECS), timeseries=timeseries)
    return timeseries


def timed_ts_run(packets):
    timeseries = make_telemetry()
    platform = make_platform("bess", SpeedyBox(build_chain()), timeseries=timeseries)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    seconds = time.perf_counter() - started
    assert result.delivered == len(packets)
    assert len(timeseries.windows) >= 1
    return seconds


def lane_chain():
    """Header-rewrite chain with no state functions (steady-compilable)."""
    return [
        SyntheticNF("fw", action=Modify.ttl_dec(), sf_payload_class=None),
        SyntheticNF("nat", action=Modify.set(dst_port=8080), sf_payload_class=None),
        SyntheticNF("mon", sf_payload_class=None),
    ]


def timed_lane_run(batch, timeseries):
    runtime = SpeedyBox(lane_chain(), max_tracked_flows=LANE_CAP, max_flows=LANE_CAP)
    platform = make_platform(
        "bess",
        runtime,
        config=PlatformConfig(batch_lane=True),
        timeseries=timeseries,
    )
    started = time.perf_counter()
    result = platform.run_load(batch)
    seconds = time.perf_counter() - started
    assert result.delivered + result.dropped == result.offered
    return seconds


def run_overhead():
    import gc

    packets = many_flow_packets()
    # Untimed warmup: the first run pays interpreter/allocator warm-up
    # that would otherwise inflate whichever cell happens to go first,
    # skewing every overhead ratio.
    timed_run(packets, None)
    # Cells are measured round-robin (every cell once per round, best of
    # ``REPEATS`` rounds per cell) rather than serially, so a machine
    # that drifts slower mid-benchmark — thermal throttling, noisy
    # neighbours — penalises every cell alike instead of whichever cells
    # happened to be timed last.  The garbage-heavy full-capture cell
    # goes last in each round, followed by a collect, so its span litter
    # never bills a later cell's GC pause to that cell.
    modes = {
        "off": lambda: None,
        "sampled": lambda: FlowSpanRecorder(every=64),
        "full": lambda: FlowSpanRecorder(every=1, max_spans_per_flow=None),
    }
    seconds = {mode: float("inf") for mode in modes}
    recorders = {}
    ts_s = forensics_s = forensics_off_s = float("inf")
    forensics_summary = None
    for __ in range(REPEATS):
        for mode in ("off", "sampled"):
            recorder = modes[mode]()
            seconds[mode] = min(seconds[mode], timed_run(packets, recorder))
            recorders[mode] = recorder
        engine = ForensicsEngine(sample_every=16)
        forensics_s = min(forensics_s, timed_forensics_run(packets, engine))
        forensics_summary = engine.summary()
        forensics_off_s = min(
            forensics_off_s,
            timed_forensics_run(packets, ForensicsEngine(enabled=False)),
        )
        ts_s = min(ts_s, timed_ts_run(packets))
        recorder = modes["full"]()
        seconds["full"] = min(seconds["full"], timed_run(packets, recorder))
        recorders["full"] = recorder
        full_summary = recorder.summary()
        recorder.reset()
        gc.collect()
    total_packets = len(packets)
    sampled_summary = recorders["sampled"].summary()

    lane_off_s = lane_ts_s = 0.0
    if vec.HAVE_NUMPY:
        lane_off_s = lane_ts_s = float("inf")
        batch = uniform_batch(
            LANE_FLOWS, LANE_PPF, interleave="round_robin", block=LANE_BLOCK
        )
        timed_lane_run(batch, None)  # untimed lane warmup
        for __ in range(REPEATS):
            lane_off_s = min(lane_off_s, timed_lane_run(batch, None))
            lane_ts_s = min(lane_ts_s, timed_lane_run(batch, make_telemetry()))

    return {
        "packets": float(total_packets),
        "flows": float(FLOWS),
        "off_s": seconds["off"],
        "sampled_s": seconds["sampled"],
        "full_s": seconds["full"],
        "sampled_overhead": seconds["sampled"] / seconds["off"] - 1.0,
        "full_overhead": seconds["full"] / seconds["off"] - 1.0,
        "off_ns_per_packet": seconds["off"] * 1e9 / total_packets,
        "sampled_ns_per_packet": seconds["sampled"] * 1e9 / total_packets,
        "sampled_flows_sampled": float(sampled_summary["flows_sampled"]),
        "sampled_spans": float(sampled_summary["spans"]),
        "full_spans": float(full_summary["spans"]),
        "timeseries_s": ts_s,
        "timeseries_overhead": ts_s / seconds["off"] - 1.0,
        "forensics_s": forensics_s,
        "forensics_overhead": forensics_s / seconds["off"] - 1.0,
        "forensics_off_s": forensics_off_s,
        "forensics_off_overhead": forensics_off_s / seconds["off"] - 1.0,
        "forensics_sampled": float(forensics_summary["sampled"]),
        "forensics_windows": float(forensics_summary["windows"]),
        "lane_off_s": lane_off_s,
        "lane_timeseries_s": lane_ts_s,
        "lane_timeseries_overhead": (
            lane_ts_s / lane_off_s - 1.0 if lane_off_s else 0.0
        ),
    }


def _report(metrics):
    text = (
        f"fig8 bess 9xIPFilter, {FLOWS} flows x {PACKETS_PER_FLOW} packets, "
        f"best of {REPEATS}:\n"
        f"off     : {metrics['off_s']:.3f}s "
        f"({metrics['off_ns_per_packet']:.0f} ns/pkt)\n"
        f"sampled : {metrics['sampled_s']:.3f}s "
        f"(1-in-64, {metrics['sampled_flows_sampled']:.0f} flows, "
        f"{metrics['sampled_spans']:.0f} spans, "
        f"overhead {100 * metrics['sampled_overhead']:+.1f}%)\n"
        f"full    : {metrics['full_s']:.3f}s "
        f"(every packet, {metrics['full_spans']:.0f} spans, "
        f"overhead {100 * metrics['full_overhead']:+.1f}%)\n"
        f"timeseries : {metrics['timeseries_s']:.3f}s "
        f"(windows+health+SLO, overhead "
        f"{100 * metrics['timeseries_overhead']:+.1f}%)\n"
        f"forensics  : {metrics['forensics_s']:.3f}s "
        f"(1-in-16 decomposition, {metrics['forensics_sampled']:.0f} sampled, "
        f"{metrics['forensics_windows']:.0f} windows, "
        f"overhead {100 * metrics['forensics_overhead']:+.1f}%), "
        f"disabled {metrics['forensics_off_s']:.3f}s "
        f"({100 * metrics['forensics_off_overhead']:+.1f}%)\n"
        f"lane       : off {metrics['lane_off_s']:.3f}s, "
        f"timeseries {metrics['lane_timeseries_s']:.3f}s "
        f"(overhead {100 * metrics['lane_timeseries_overhead']:+.1f}%)"
    )
    save_result("obs_overhead", text, metrics=metrics)


def test_obs_overhead(benchmark):
    metrics = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    _report(metrics)
    assert metrics["sampled_flows_sampled"] == FLOWS / 64
    assert metrics["full_spans"] > metrics["sampled_spans"]
    assert metrics["sampled_overhead"] <= MAX_SAMPLED_OVERHEAD, (
        f"1-in-64 span sampling costs {100 * metrics['sampled_overhead']:.1f}% "
        f"over the uninstrumented fast path "
        f"(budget {100 * MAX_SAMPLED_OVERHEAD:.0f}%)"
    )
    assert metrics["timeseries_overhead"] <= MAX_SAMPLED_OVERHEAD, (
        f"windowed telemetry costs {100 * metrics['timeseries_overhead']:.1f}% "
        f"over the uninstrumented per-packet fast path "
        f"(budget {100 * MAX_SAMPLED_OVERHEAD:.0f}%)"
    )
    assert metrics["forensics_sampled"] > 0, "forensics cell sampled no packets"
    assert metrics["forensics_overhead"] <= MAX_SAMPLED_OVERHEAD, (
        f"1-in-16 latency forensics costs "
        f"{100 * metrics['forensics_overhead']:.1f}% over the uninstrumented "
        f"fast path (budget {100 * MAX_SAMPLED_OVERHEAD:.0f}%)"
    )
    assert metrics["forensics_off_overhead"] <= MAX_SAMPLED_OVERHEAD, (
        f"a disabled forensics engine costs "
        f"{100 * metrics['forensics_off_overhead']:.1f}% — the disabled mode "
        f"must be one attribute check per run"
    )
    if vec.HAVE_NUMPY:
        assert metrics["lane_timeseries_overhead"] <= MAX_SAMPLED_OVERHEAD, (
            f"windowed telemetry costs "
            f"{100 * metrics['lane_timeseries_overhead']:.1f}% over the "
            f"uninstrumented batch lane "
            f"(budget {100 * MAX_SAMPLED_OVERHEAD:.0f}%)"
        )
