"""Span-sampling overhead benchmark (the observability perf gate).

The flow-span recorder's contract is that production-grade sampling
(1 in 64 flows, default per-flow cap) rides on the fast engine — the
compiled flow closures and the analytic replay stay enabled, and the
per-packet cost for an unsampled flow is one dict probe.  This
benchmark measures the Figure-8 worst case (BESS, 9-NF IPFilter chain)
over many-flow traffic three ways:

- ``off``       — no recorder attached (the uninstrumented fast path);
- ``sampled``   — ``FlowSpanRecorder(every=64)``, the production config;
- ``full``      — ``every=1`` with no per-flow cap (every packet, the
  exact-attribution configuration the integration tests use).

Best-of-``REPEATS`` wall-clock for each lands in
``BENCH_obs_overhead.json``; the gate asserts the sampled run costs at
most ``MAX_SAMPLED_OVERHEAD`` (5 %) over the uninstrumented run, and
``benchmarks/check_obs_overhead.py`` re-checks the committed JSON in CI.
"""

from __future__ import annotations

import time

from benchmarks.harness import make_platform, save_result
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.obs import FlowSpanRecorder
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

FLOWS = 256
PACKETS_PER_FLOW = 200
REPEATS = 5
CHAIN_LENGTH = 9
MAX_SAMPLED_OVERHEAD = 0.05


def build_chain():
    return [IPFilter(f"ipfilter{i}") for i in range(CHAIN_LENGTH)]


def many_flow_packets():
    """256 interleaved flows, so 1-in-64 sampling is non-degenerate."""
    specs = [
        FlowSpec.tcp(
            f"10.{index // 250}.{index % 250}.1",
            "20.0.0.1",
            2000 + index,
            80,
            packets=PACKETS_PER_FLOW,
            payload=b"x" * 26,
        )
        for index in range(FLOWS)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


def timed_run(packets, recorder):
    platform = make_platform("bess", SpeedyBox(build_chain()), spans=recorder)
    clones = clone_packets(packets)
    started = time.perf_counter()
    result = platform.run_load(clones)
    seconds = time.perf_counter() - started
    assert result.delivered == len(packets)
    return seconds


def run_overhead():
    packets = many_flow_packets()
    modes = {
        "off": lambda: None,
        "sampled": lambda: FlowSpanRecorder(every=64),
        "full": lambda: FlowSpanRecorder(every=1, max_spans_per_flow=None),
    }
    seconds = {}
    recorders = {}
    for mode, factory in modes.items():
        best = float("inf")
        for __ in range(REPEATS):
            recorder = factory()
            best = min(best, timed_run(packets, recorder))
            recorders[mode] = recorder
        seconds[mode] = best
    total_packets = len(packets)
    sampled_summary = recorders["sampled"].summary()
    full_summary = recorders["full"].summary()
    return {
        "packets": float(total_packets),
        "flows": float(FLOWS),
        "off_s": seconds["off"],
        "sampled_s": seconds["sampled"],
        "full_s": seconds["full"],
        "sampled_overhead": seconds["sampled"] / seconds["off"] - 1.0,
        "full_overhead": seconds["full"] / seconds["off"] - 1.0,
        "off_ns_per_packet": seconds["off"] * 1e9 / total_packets,
        "sampled_ns_per_packet": seconds["sampled"] * 1e9 / total_packets,
        "sampled_flows_sampled": float(sampled_summary["flows_sampled"]),
        "sampled_spans": float(sampled_summary["spans"]),
        "full_spans": float(full_summary["spans"]),
    }


def _report(metrics):
    text = (
        f"fig8 bess 9xIPFilter, {FLOWS} flows x {PACKETS_PER_FLOW} packets, "
        f"best of {REPEATS}:\n"
        f"off     : {metrics['off_s']:.3f}s "
        f"({metrics['off_ns_per_packet']:.0f} ns/pkt)\n"
        f"sampled : {metrics['sampled_s']:.3f}s "
        f"(1-in-64, {metrics['sampled_flows_sampled']:.0f} flows, "
        f"{metrics['sampled_spans']:.0f} spans, "
        f"overhead {100 * metrics['sampled_overhead']:+.1f}%)\n"
        f"full    : {metrics['full_s']:.3f}s "
        f"(every packet, {metrics['full_spans']:.0f} spans, "
        f"overhead {100 * metrics['full_overhead']:+.1f}%)"
    )
    save_result("obs_overhead", text, metrics=metrics)


def test_obs_overhead(benchmark):
    metrics = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    _report(metrics)
    assert metrics["sampled_flows_sampled"] == FLOWS / 64
    assert metrics["full_spans"] > metrics["sampled_spans"]
    assert metrics["sampled_overhead"] <= MAX_SAMPLED_OVERHEAD, (
        f"1-in-64 span sampling costs {100 * metrics['sampled_overhead']:.1f}% "
        f"over the uninstrumented fast path "
        f"(budget {100 * MAX_SAMPLED_OVERHEAD:.0f}%)"
    )
