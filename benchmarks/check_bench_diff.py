"""CI perf gate: diff fresh BENCH_*.json artifacts against baselines.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_diff.py BASELINE CURRENT \
        [--threshold 0.05] [--ignore REGEX] [--show-ok]

``BASELINE`` and ``CURRENT`` are each a ``BENCH_*.json`` file or a
directory of them (the repo root holds the committed baselines; a CI
run stashes them, re-runs the benchmark suite, and diffs).  The differ
(:mod:`repro.obs.benchdiff`) classifies every metric by its name's
good direction — latency/loss keys gate lower-is-better, throughput
keys higher-is-better — and wall-clock-derived keys (absolute seconds,
overhead ratios, speedups) are reported but never gate, because runner
speed is not comparable across machines.  Exit code 1 when any gated
metric regressed beyond the threshold.  ``repro obs diff`` is the
human-facing face of the same differ.
"""

from __future__ import annotations

import argparse

from repro.obs.benchdiff import (
    DEFAULT_IGNORE,
    collect_benches,
    diff_benches,
    regressions,
    render_diff,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("current", help="current BENCH_*.json file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="fractional change that counts as a regression (default 0.05)",
    )
    parser.add_argument(
        "--ignore",
        default=DEFAULT_IGNORE,
        help="regex of metric keys to report but never gate "
        "(default: wall-clock-derived keys)",
    )
    parser.add_argument(
        "--show-ok",
        action="store_true",
        help="also list unchanged metrics",
    )
    args = parser.parse_args(argv)
    entries = diff_benches(
        collect_benches(args.baseline),
        collect_benches(args.current),
        threshold=args.threshold,
        ignore=args.ignore or None,
    )
    print(render_diff(entries, title="bench regression gate", show_ok=args.show_ok))
    bad = regressions(entries)
    if bad:
        print(f"{len(bad)} metric(s) regressed beyond {args.threshold:.0%}:")
        for entry in bad:
            print(f"  {entry.describe()}")
        return 1
    print("bench diff gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
