"""CI perf gate: span sampling must stay cheap on the fast path.

Usage::

    python benchmarks/check_obs_overhead.py BENCH_obs_overhead.json \
        [--threshold 0.05]

The observability contract is that the production span config
(1-in-64 flow sampling, default per-flow cap) rides on the compiled
fast path for free: unsampled flows pay one dict probe per packet.
``benchmarks/test_obs_overhead.py`` measures the uninstrumented and
sampled runs back to back on the same machine, so the recorded
``sampled_overhead`` ratio is machine-independent and can be checked
directly — no baseline normalisation needed.  The same bound applies
to the windowed-telemetry cells (``timeseries_overhead`` on the
compiled per-packet path, ``lane_timeseries_overhead`` on the batch
lane — the latter skipped when the lane cells report zero, i.e. the
measuring box had no numpy) and to the tail-latency forensics cells
(``forensics_overhead`` for the production 1-in-16 decomposition
stride, ``forensics_off_overhead`` for a constructed-but-disabled
engine, which must be effectively free).  A run fails when any
instrumented cell exceeds the threshold (default 5%), when sampling
degenerated (no flows sampled, full-capture recorded no more spans
than sampled, or forensics sampled no packets), or when required
metrics are missing.  Exit code 1 on any failure.
"""

from __future__ import annotations

import argparse
import json


REQUIRED = (
    "off_s",
    "sampled_s",
    "sampled_overhead",
    "sampled_flows_sampled",
    "sampled_spans",
    "full_spans",
    "timeseries_s",
    "timeseries_overhead",
    "forensics_s",
    "forensics_overhead",
    "forensics_off_s",
    "forensics_off_overhead",
    "forensics_sampled",
    "lane_off_s",
    "lane_timeseries_s",
    "lane_timeseries_overhead",
)


def load_metrics(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    return payload["metrics"]


def check(metrics: dict, threshold: float) -> int:
    failures = 0
    missing = [key for key in REQUIRED if key not in metrics]
    if missing:
        print(f"FAIL missing metrics: {', '.join(missing)}")
        return 1
    overhead = metrics["sampled_overhead"]
    status = "ok" if overhead <= threshold else "FAIL"
    print(
        f"{status:4s} sampled overhead: {100 * overhead:+.1f}% "
        f"(off {metrics['off_s']:.3f}s, sampled {metrics['sampled_s']:.3f}s, "
        f"budget {100 * threshold:.0f}%)"
    )
    if overhead > threshold:
        failures += 1
    if metrics["sampled_flows_sampled"] < 1:
        print("FAIL sampling degenerated: no flows were sampled")
        failures += 1
    else:
        print(
            f"ok   sampling live: {metrics['sampled_flows_sampled']:.0f} flows, "
            f"{metrics['sampled_spans']:.0f} spans recorded"
        )
    if metrics["full_spans"] <= metrics["sampled_spans"]:
        print(
            "FAIL full capture recorded no more spans than sampled "
            f"({metrics['full_spans']:.0f} vs {metrics['sampled_spans']:.0f})"
        )
        failures += 1
    ts_overhead = metrics["timeseries_overhead"]
    status = "ok" if ts_overhead <= threshold else "FAIL"
    print(
        f"{status:4s} telemetry overhead (per-packet): {100 * ts_overhead:+.1f}% "
        f"(off {metrics['off_s']:.3f}s, timeseries {metrics['timeseries_s']:.3f}s, "
        f"budget {100 * threshold:.0f}%)"
    )
    if ts_overhead > threshold:
        failures += 1
    fx_overhead = metrics["forensics_overhead"]
    status = "ok" if fx_overhead <= threshold else "FAIL"
    print(
        f"{status:4s} forensics overhead (1-in-16): {100 * fx_overhead:+.1f}% "
        f"(off {metrics['off_s']:.3f}s, forensics {metrics['forensics_s']:.3f}s, "
        f"budget {100 * threshold:.0f}%)"
    )
    if fx_overhead > threshold:
        failures += 1
    if metrics["forensics_sampled"] < 1:
        print("FAIL forensics degenerated: no packets were sampled")
        failures += 1
    fx_off = metrics["forensics_off_overhead"]
    status = "ok" if fx_off <= threshold else "FAIL"
    print(
        f"{status:4s} forensics overhead (disabled engine): "
        f"{100 * fx_off:+.1f}% "
        f"(off {metrics['off_s']:.3f}s, "
        f"disabled {metrics['forensics_off_s']:.3f}s — must be ~free)"
    )
    if fx_off > threshold:
        failures += 1
    if metrics["lane_off_s"] > 0:
        lane_overhead = metrics["lane_timeseries_overhead"]
        status = "ok" if lane_overhead <= threshold else "FAIL"
        print(
            f"{status:4s} telemetry overhead (batch lane): "
            f"{100 * lane_overhead:+.1f}% "
            f"(off {metrics['lane_off_s']:.3f}s, "
            f"timeseries {metrics['lane_timeseries_s']:.3f}s, "
            f"budget {100 * threshold:.0f}%)"
        )
        if lane_overhead > threshold:
            failures += 1
    else:
        print("skip batch-lane telemetry cells (measured without numpy)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured BENCH_obs_overhead.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="allowed fractional overhead for 1-in-64 sampling (default 0.05)",
    )
    args = parser.parse_args(argv)
    failures = check(load_metrics(args.current), args.threshold)
    if failures:
        print(f"{failures} check(s) failed the obs overhead gate")
        return 1
    print("obs overhead gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
